// Package core implements the paper's grading engine: Algorithm 2
// (SubmissionMatching) on top of the EPDG builder, the pattern matcher and
// the constraint checker. This is the public API a course platform embeds.
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"semfeed/internal/analysis"
	"semfeed/internal/constraint"
	"semfeed/internal/java/ast"
	"semfeed/internal/java/inline"
	"semfeed/internal/java/parser"
	"semfeed/internal/match"
	"semfeed/internal/obs"
	"semfeed/internal/pattern"
	"semfeed/internal/pdg"
)

// PatternUse attaches a pattern to an expected method with its expected
// number of occurrences t̄(q, p). Count 0 declares a "bad pattern" that must
// not appear (e.g. updating a sentinel index twice).
type PatternUse struct {
	Pattern *pattern.Compiled
	Count   int
}

// GroupUse attaches a pattern group (a cluster of alternative patterns with
// the same semantics — the paper's variability extension) to an expected
// method with its expected occurrence count.
type GroupUse struct {
	Group *pattern.Group
	Count int
}

// MethodSpec describes one expected method q: the patterns the instructor
// expects to find in it, pattern groups covering strategy variability, and
// the constraints correlating patterns.
type MethodSpec struct {
	Name        string
	Patterns    []PatternUse
	Groups      []GroupUse
	Constraints []*constraint.Compiled
}

// AssignmentSpec wires patterns and constraints to the expected methods of
// one assignment (the mappings p̄, t̄ and c̄ of Algorithm 2).
type AssignmentSpec struct {
	Name    string
	Methods []MethodSpec

	// Analysis, when non-nil, overrides the grader's default static-analysis
	// driver for this assignment (the KB's per-assignment "analyzers" enable
	// list compiles into it). An empty driver disables analysis outright.
	Analysis *analysis.Driver
}

// PatternCount returns the total number of pattern uses across methods
// (column P of Table I counts per-assignment pattern selections).
func (s *AssignmentSpec) PatternCount() int {
	n := 0
	for _, m := range s.Methods {
		n += len(m.Patterns) + len(m.Groups)
	}
	return n
}

// ConstraintCount returns the total number of constraints across methods.
func (s *AssignmentSpec) ConstraintCount() int {
	n := 0
	for _, m := range s.Methods {
		n += len(m.Constraints)
	}
	return n
}

// Status classifies one feedback comment.
type Status int

// Comment statuses, with the Λ weights of Equation 3.
const (
	Correct     Status = iota // λ = 1
	Incorrect                 // λ = 0.5
	NotExpected               // λ = 0
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Correct:
		return "Correct"
	case Incorrect:
		return "Incorrect"
	default:
		return "NotExpected"
	}
}

// MarshalJSON renders the status by name so JSON reports are readable.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a status name.
func (s *Status) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"Correct"`:
		*s = Correct
	case `"Incorrect"`:
		*s = Incorrect
	case `"NotExpected"`:
		*s = NotExpected
	default:
		return fmt.Errorf("core: unknown status %s", data)
	}
	return nil
}

// Lambda returns the λ weight of the status (Equation 3).
func (s Status) Lambda() float64 {
	switch s {
	case Correct:
		return 1
	case Incorrect:
		return 0.5
	default:
		return 0
	}
}

// Comment is one personalized feedback item.
type Comment struct {
	Method  string // expected method q
	Kind    string // "pattern" or "constraint"
	Source  string // pattern or constraint name
	Status  Status
	Message string   // rendered top-level message
	Details []string // rendered per-node feedback lines
}

// Report is the output of grading one submission.
type Report struct {
	Assignment string
	Comments   []Comment
	Score      float64           // Λ(B)
	MaxScore   float64           // Λ if everything were Correct
	Bindings   map[string]string // expected method -> submission method
	Matched    bool              // false when the expected headers are absent
	Elapsed    time.Duration
	Stats      *Stats `json:"stats"` // per-report cost accounting

	// Diagnostics are pattern-independent static-analysis findings (dead
	// stores, unreachable code, use-before-definition, ...) produced when an
	// analysis driver is enabled; empty otherwise.
	Diagnostics []analysis.Diagnostic `json:"Diagnostics,omitempty"`
}

// Stats is the per-report cost accounting block: where the grade's time went
// (stage durations) and how much work each algorithm performed (Algorithm 1
// candidate extensions and backtracks, Algorithm 2 method combinations,
// constraint combination products). It is serialized inside the report JSON
// so an LMS or a perf harness can track the grading cost per submission.
// Durations are nanoseconds in JSON.
type Stats struct {
	ParseTime      time.Duration `json:"parse_ns"`      // only set on the Grade (source) path
	InlineTime     time.Duration `json:"inline_ns"`     // helper inlining, when enabled
	BuildTime      time.Duration `json:"build_ns"`      // EPDG construction
	MatchTime      time.Duration `json:"match_ns"`      // Algorithm 1 across all bindings
	ConstraintTime time.Duration `json:"constraint_ns"` // constraint checking across all bindings
	AnalysisTime   time.Duration `json:"analysis_ns"`   // static-analysis driver, when enabled
	TotalTime      time.Duration `json:"total_ns"`      // end-to-end grade time

	Methods      int `json:"methods"`       // submission methods with an EPDG
	EPDGNodes    int `json:"epdg_nodes"`    // nodes across those EPDGs
	EPDGEdges    int `json:"epdg_edges"`    // edges across those EPDGs
	MethodCombos int `json:"method_combos"` // expected↔actual bindings scored (Algorithm 2)

	MatchCalls         int64 `json:"match_calls"`           // pattern searches run
	MatchSteps         int64 `json:"match_steps"`           // candidate extensions tried
	MatchBacktracks    int64 `json:"match_backtracks"`      // candidates rejected
	MatchStepLimitHits int64 `json:"match_step_limit_hits"` // searches that hit the step budget
	Embeddings         int64 `json:"embeddings"`            // embeddings found (pre-pruning)
	MatchCacheHits     int64 `json:"match_cache_hits"`      // searches served from the per-grade cache
	MatchCacheMisses   int64 `json:"match_cache_misses"`    // searches computed and cached

	ConstraintChecks int64 `json:"constraint_checks"` // constraint evaluations
	ConstraintCombos int64 `json:"constraint_combos"` // embedding combinations examined

	// AnalysisFindings counts static-analysis diagnostics per analyzer name.
	AnalysisFindings map[string]int `json:"analysis_findings,omitempty"`

	// Functional-testing phase, stamped by RunFuncTests when the caller runs
	// the suite (the CLI's -functest flag, the bench harness). Compile time
	// and cache traffic cover the closure-compilation of submissions into
	// executable programs; zero when the suite did not run.
	FuncTestTime      time.Duration `json:"functest_ns,omitempty"`
	FuncTestCases     int           `json:"functest_cases,omitempty"`
	InterpSteps       int64         `json:"interp_steps,omitempty"`
	InterpCompileTime time.Duration `json:"interp_compile_ns,omitempty"`
	InterpCacheHits   int64         `json:"interp_cache_hits,omitempty"`
	InterpCacheMisses int64         `json:"interp_cache_misses,omitempty"`

	// RequestID is the correlation key of the serving path: the same ID the
	// HTTP layer echoed in X-Request-ID and stamped on the grade's trace, so
	// a stored report joins against its log line and /v1/trace/{id} entry.
	RequestID string `json:"request_id,omitempty"`
}

// addWork folds matcher work counters into the stats.
func (s *Stats) addWork(w *match.Work) {
	s.MatchCalls += w.Calls
	s.MatchSteps += w.Steps
	s.MatchBacktracks += w.Backtracks
	s.MatchStepLimitHits += w.StepLimitHits
	s.Embeddings += w.Embeddings
}

// AllCorrect reports whether every comment is Correct.
func (r *Report) AllCorrect() bool {
	if !r.Matched || len(r.Comments) == 0 {
		return false
	}
	for _, c := range r.Comments {
		if c.Status != Correct {
			return false
		}
	}
	return true
}

// String renders the report as the student would see it.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Assignment %s — score %.1f/%.1f\n", r.Assignment, r.Score, r.MaxScore)
	if !r.Matched {
		sb.WriteString("  Your submission does not provide the expected method header(s); no feedback can be given.\n")
		return sb.String()
	}
	for _, c := range r.Comments {
		fmt.Fprintf(&sb, "  [%s] %s", c.Status, c.Message)
		if c.Message == "" {
			fmt.Fprintf(&sb, "(%s %s)", c.Kind, c.Source)
		}
		sb.WriteByte('\n')
		for _, d := range c.Details {
			fmt.Fprintf(&sb, "      - %s\n", d)
		}
	}
	if len(r.Diagnostics) > 0 {
		sb.WriteString("  Static analysis:\n")
		for _, d := range r.Diagnostics {
			fmt.Fprintf(&sb, "    %s: line %d: [%s] %s\n", d.Severity, d.Line, d.Analyzer, d.Message)
		}
	}
	return sb.String()
}

// Options tune the grader. The zero value applies the defaults.
type Options struct {
	// MatchOptions are passed through to the subgraph matcher.
	MatchOptions match.Options
	// BuildOptions select the EPDG construction conventions (ablations).
	BuildOptions pdg.BuildOpts
	// InlineHelpers expands calls to simple single-return helper methods
	// into the expected methods before building EPDGs, so decomposed
	// submissions still expose the computation to the patterns (the paper's
	// Section VII plan for non-expected methods).
	InlineHelpers bool
	// MaxMethodCombos caps the number of expected↔actual method bindings
	// tried (default 720).
	MaxMethodCombos int
	// Analyzers, when non-nil, runs pattern-independent static analysis over
	// every submission method's EPDG and attaches the findings to
	// Report.Diagnostics. Nil disables analysis entirely (zero overhead). A
	// spec's own Analysis driver takes precedence for its assignment.
	Analyzers *analysis.Driver
}

func (o Options) maxCombos() int {
	if o.MaxMethodCombos > 0 {
		return o.MaxMethodCombos
	}
	return 720
}

// matchCache memoizes Algorithm 1 results within one GradeUnit call. The
// method-binding sweep of Algorithm 2 re-grades the same (pattern, graph)
// pair under every E×A combination that binds a different expected method to
// the same submission method; embeddings depend only on the pair (and the
// fixed match options), so each pair is searched exactly once per grade.
// Embeddings are shared read-only by the feedback and constraint stages, so
// handing the same slice to several bindings is safe. Keys are pointer
// identities: patterns are compiled once per spec and graphs once per grade,
// so pointer equality is exactly value equality here.
type matchCache struct {
	entries      map[matchCacheKey][]match.Embedding
	hits, misses int64
}

type matchCacheKey struct {
	p *pattern.Compiled
	g *pdg.Graph
}

func newMatchCache() *matchCache {
	return &matchCache{entries: map[matchCacheKey][]match.Embedding{}}
}

// find returns the memoized embeddings of p in g, running the matcher on the
// first request for the pair.
func (c *matchCache) find(p *pattern.Compiled, g *pdg.Graph, opts match.Options) (embs []match.Embedding, hit bool) {
	obs.MatchCacheLookupsTotal.Inc()
	k := matchCacheKey{p, g}
	if embs, hit = c.entries[k]; hit {
		c.hits++
		obs.MatchCacheHitsTotal.Inc()
		return embs, true
	}
	embs = match.FindOpts(p, g, opts)
	c.entries[k] = embs
	c.misses++
	obs.MatchCacheMissesTotal.Inc()
	return embs, false
}

// Grader grades submissions against assignment specs.
type Grader struct {
	opts Options
}

// NewGrader returns a grader with the given options.
func NewGrader(opts Options) *Grader { return &Grader{opts: opts} }

// analysisDriver resolves which static-analysis driver applies to spec.
func (g *Grader) analysisDriver(spec *AssignmentSpec) *analysis.Driver {
	if spec.Analysis != nil {
		return spec.Analysis
	}
	return g.opts.Analyzers
}

// Grade parses src and grades it against spec.
func (g *Grader) Grade(src string, spec *AssignmentSpec) (*Report, error) {
	return g.GradeContext(context.Background(), src, spec)
}

// gradeState carries one grade's trace root, report and stats through the
// phases, so Grade (source path, with a parse phase) and GradeUnit (parsed
// path) share the same begin/finish lifecycle and a single root span.
type gradeState struct {
	spec   *AssignmentSpec
	start  time.Time
	stats  *Stats
	report *Report
	root   *obs.Span
	// errored marks a grade that failed before producing a report (parse
	// error): outcome and status "error" instead of "unmatched".
	errored bool
}

// beginGrade opens the trace root and the inflight accounting for one grade.
func (g *Grader) beginGrade(ctx context.Context, spec *AssignmentSpec) *gradeState {
	obs.GradesInflight.Inc()
	gs := &gradeState{
		spec:   spec,
		start:  time.Now(),
		stats:  &Stats{},
		report: &Report{Assignment: spec.Name, Bindings: map[string]string{}},
		root:   obs.StartTrace("grade/" + spec.Name),
	}
	gs.report.Stats = gs.stats
	if rid := obs.RequestIDFrom(ctx); rid != "" {
		gs.stats.RequestID = rid
		gs.root.SetTraceID(rid)
	}
	if tc, ok := obs.TraceContextFrom(ctx); ok && tc.Valid() {
		// The request arrived under a W3C trace context: record it so the
		// exported trace joins its cross-process parent.
		gs.root.SetRemoteParent(tc.Traceparent())
	}
	return gs
}

// endPhase closes one phase span and attributes its cost: the span gets the
// phase tag, and semfeed_phase_ns{assignment,phase} accumulates the
// nanoseconds (the exposition-side view of BENCH_tableone's *_ns columns).
func (gs *gradeState) endPhase(sp *obs.Span, phase string, d time.Duration) {
	sp.SetAttr("phase", phase)
	sp.End()
	obs.PhaseNS.Add(d.Nanoseconds(), gs.spec.Name, phase)
}

// finish seals the grade: totals, terminal metrics, outcome classification
// and the root span.
func (gs *gradeState) finish(ctx context.Context) {
	gs.report.Elapsed = time.Since(gs.start)
	gs.stats.TotalTime = gs.report.Elapsed
	obs.GradesInflight.Dec()
	obs.GradeSeconds.ObserveDuration(gs.report.Elapsed)
	obs.GradeScore.Observe(gs.report.Score)
	obs.GradeMethodCombos.Add(int64(gs.stats.MethodCombos))
	if gs.report.Matched {
		obs.GradeMatchedTotal.Inc()
	} else {
		obs.GradeUnmatchedTotal.Inc()
	}
	status := "ok"
	switch {
	case ctx.Err() == context.DeadlineExceeded:
		status = "timeout"
		gs.root.SetOutcome("timeout")
	case ctx.Err() == context.Canceled:
		status = "canceled"
		gs.root.SetOutcome("canceled")
	case gs.errored:
		status = "error"
		gs.root.SetOutcome("error")
	case !gs.report.Matched:
		status = "unmatched"
	}
	obs.GradesTotal.Add(1, gs.spec.Name, status)
	gs.root.SetAttr("score", fmt.Sprintf("%.1f/%.1f", gs.report.Score, gs.report.MaxScore))
	gs.root.SetAttrInt("method_combos", int64(gs.stats.MethodCombos))
	gs.root.SetAttrInt("match_steps", gs.stats.MatchSteps)
	gs.root.End()
}

// GradeContext is Grade under a context: a cancelled or expired ctx stops
// the grade early — the deadline propagates into Algorithm 1's search loop —
// and ctx.Err() is returned alongside the (partial) report. The serving path
// uses this to bound per-request latency. The parse runs inside the grade's
// trace as its own phase span, so source-path traces attribute the full
// request.
func (g *Grader) GradeContext(ctx context.Context, src string, spec *AssignmentSpec) (*Report, error) {
	gs := g.beginGrade(ctx, spec)
	defer gs.finish(ctx)
	sp := gs.root.Child("parse")
	t0 := time.Now()
	unit, err := parser.Parse(src)
	gs.stats.ParseTime = time.Since(t0)
	sp.SetAttrInt("bytes", int64(len(src)))
	gs.endPhase(sp, "parse", gs.stats.ParseTime)
	if err != nil {
		gs.errored = true
		return nil, err
	}
	g.gradeUnit(ctx, unit, spec, gs)
	return gs.report, ctx.Err()
}

// GradeUnit grades a parsed compilation unit against spec (Algorithm 2).
func (g *Grader) GradeUnit(unit *ast.CompilationUnit, spec *AssignmentSpec) *Report {
	return g.GradeUnitContext(context.Background(), unit, spec)
}

// GradeUnitContext is GradeUnit under a context. Cancellation is polled
// between method bindings and inside the matcher's candidate-extension loop,
// so even a single pathological binding is cut promptly; the report produced
// so far is returned (check ctx.Err() to distinguish a complete grade).
func (g *Grader) GradeUnitContext(ctx context.Context, unit *ast.CompilationUnit, spec *AssignmentSpec) *Report {
	gs := g.beginGrade(ctx, spec)
	defer gs.finish(ctx)
	g.gradeUnit(ctx, unit, spec, gs)
	return gs.report
}

// gradeUnit runs Algorithm 2 over a parsed unit inside an open grade: the
// phases after parse, each under its own child span of gs.root.
func (g *Grader) gradeUnit(ctx context.Context, unit *ast.CompilationUnit, spec *AssignmentSpec, gs *gradeState) {
	stats, report := gs.stats, gs.report
	for _, m := range spec.Methods {
		report.MaxScore += float64(len(m.Patterns) + len(m.Groups) + len(m.Constraints))
	}

	// Step 1: extract the EPDG of every submission method, optionally
	// inlining helper calls first.
	if g.opts.InlineHelpers {
		sp := gs.root.Child("inline_helpers")
		t0 := time.Now()
		keep := map[string]bool{}
		for _, m := range spec.Methods {
			keep[m.Name] = true
		}
		unit = inline.Expand(unit, keep)
		stats.InlineTime = time.Since(t0)
		gs.endPhase(sp, "inline", stats.InlineTime)
	}
	buildSp := gs.root.Child("build_epdg")
	t0 := time.Now()
	graphs := pdg.BuildAllWith(unit, g.opts.BuildOptions)
	stats.BuildTime = time.Since(t0)
	stats.Methods = len(graphs)
	for _, gr := range graphs {
		stats.EPDGNodes += len(gr.Nodes)
		stats.EPDGEdges += len(gr.Edges)
	}
	buildSp.SetAttrInt("methods", int64(stats.Methods))
	buildSp.SetAttrInt("nodes", int64(stats.EPDGNodes))
	buildSp.SetAttrInt("edges", int64(stats.EPDGEdges))
	gs.endPhase(buildSp, "build", stats.BuildTime)
	if len(graphs) == 0 {
		return
	}

	// Step 1b: pattern-independent static analysis over the fresh EPDGs. The
	// driver is per-assignment when the spec carries one, else the grader
	// default; nil means disabled and costs nothing.
	if driver := g.analysisDriver(spec); driver != nil {
		sp := gs.root.Child("analysis")
		t0 := time.Now()
		report.Diagnostics = driver.Run(graphs)
		stats.AnalysisTime = time.Since(t0)
		stats.AnalysisFindings = analysis.Counts(report.Diagnostics)
		sp.SetAttrInt("diagnostics", int64(len(report.Diagnostics)))
		gs.endPhase(sp, "analysis", stats.AnalysisTime)
	}

	methodNames := make([]string, 0, len(graphs))
	for name := range graphs {
		methodNames = append(methodNames, name)
	}
	sort.Strings(methodNames)

	// Step 2: try every combination of expected and existing methods, keep
	// the one maximizing Λ. The match cache spans the whole sweep: a
	// (pattern, graph) pair is searched once even when E×A bindings revisit
	// it under different expected-method names. The whole sweep is one match
	// phase span; the per-binding spans hang under it.
	cache := newMatchCache()
	sweepSp := gs.root.Child("match_sweep")
	sweepStart := time.Now()
	best := -1.0
	for _, binding := range g.bindings(spec, methodNames) {
		if ctx.Err() != nil {
			break
		}
		stats.MethodCombos++
		bindSp := sweepSp.Child("binding")
		if bindSp != nil {
			bindSp.SetAttr("methods", renderBinding(binding))
		}
		comments, score := g.gradeBinding(ctx, spec, graphs, binding, cache, stats, bindSp)
		if bindSp != nil {
			bindSp.SetAttr("score", fmt.Sprintf("%.1f", score))
		}
		bindSp.End()
		if score > best {
			best = score
			report.Comments = comments
			report.Score = score
			report.Bindings = binding
			report.Matched = true
		}
	}
	stats.MatchCacheHits = cache.hits
	stats.MatchCacheMisses = cache.misses
	sweepSp.SetAttrInt("combos", int64(stats.MethodCombos))
	sweepSp.SetAttrInt("match_calls", stats.MatchCalls)
	sweepSp.SetAttrInt("match_steps", stats.MatchSteps)
	sweepSp.SetAttrInt("backtracks", stats.MatchBacktracks)
	sweepSp.SetAttrInt("cache_hits", stats.MatchCacheHits)
	sweepSp.SetAttrInt("cache_misses", stats.MatchCacheMisses)
	gs.endPhase(sweepSp, "match", stats.MatchTime)
	// Constraint checking is interleaved with matching inside the sweep; its
	// aggregate cost gets a summary span so the phase tree attributes it
	// separately from Algorithm 1 search time.
	gs.root.RecordChild("constraint_check", sweepStart, stats.ConstraintTime,
		obs.Attr{Key: "phase", Value: "constraint"},
		obs.Attr{Key: "checks", Value: strconv.FormatInt(stats.ConstraintChecks, 10)},
		obs.Attr{Key: "combos", Value: strconv.FormatInt(stats.ConstraintCombos, 10)})
	obs.PhaseNS.Add(stats.ConstraintTime.Nanoseconds(), spec.Name, "constraint")
}

// renderBinding renders an expected→actual method binding for span attrs.
func renderBinding(binding map[string]string) string {
	keys := make([]string, 0, len(binding))
	for k := range binding {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(k + "→" + binding[k])
	}
	return sb.String()
}

// bindings enumerates injective mappings from expected method names to
// submission method names. When every expected name is present verbatim the
// identity binding is tried first (the header-enforcement fast path the
// paper describes); remaining permutations cover renamed methods.
func (g *Grader) bindings(spec *AssignmentSpec, methods []string) []map[string]string {
	expected := make([]string, len(spec.Methods))
	for i, m := range spec.Methods {
		expected[i] = m.Name
	}
	if len(expected) > len(methods) {
		return nil
	}
	have := map[string]bool{}
	for _, m := range methods {
		have[m] = true
	}
	var out []map[string]string
	identity := true
	for _, q := range expected {
		if !have[q] {
			identity = false
			break
		}
	}
	if identity {
		b := map[string]string{}
		for _, q := range expected {
			b[q] = q
		}
		return []map[string]string{b}
	}

	used := make([]bool, len(methods))
	cur := map[string]string{}
	var rec func(i int)
	rec = func(i int) {
		if len(out) >= g.opts.maxCombos() {
			return
		}
		if i == len(expected) {
			b := make(map[string]string, len(cur))
			for k, v := range cur {
				b[k] = v
			}
			out = append(out, b)
			return
		}
		for j, h := range methods {
			if used[j] {
				continue
			}
			used[j] = true
			cur[expected[i]] = h
			rec(i + 1)
			delete(cur, expected[i])
			used[j] = false
		}
	}
	rec(0)
	return out
}

// gradeBinding runs steps 2.1 and 2.2 of Algorithm 2 for one method binding
// and returns the comments with their Λ score. Matcher and constraint work
// is accumulated into st; spans hang off parent when tracing is on.
func (g *Grader) gradeBinding(ctx context.Context, spec *AssignmentSpec, graphs map[string]*pdg.Graph, binding map[string]string, cache *matchCache, st *Stats, parent *obs.Span) ([]Comment, float64) {
	mopts := g.opts.MatchOptions
	work := &match.Work{}
	mopts.Work = work
	if ctx.Done() != nil {
		mopts.Done = ctx.Done()
	}
	var comments []Comment
	for _, mspec := range spec.Methods {
		graph := graphs[binding[mspec.Name]]
		if graph == nil {
			continue
		}
		embs := map[string][]match.Embedding{}
		statuses := map[string]Status{}
		// 2.1: match patterns.
		for _, use := range mspec.Patterns {
			sp := parent.Child("match:" + use.Pattern.Name())
			stepsBefore := work.Steps
			t0 := time.Now()
			m, hit := cache.find(use.Pattern, graph, mopts)
			if !hit {
				st.MatchTime += time.Since(t0)
			}
			sp.SetAttrInt("embeddings", int64(len(m)))
			sp.SetAttrInt("steps", work.Steps-stepsBefore)
			if hit {
				sp.SetAttr("cached", "true")
			}
			sp.End()
			embs[use.Pattern.Name()] = m
			c := provideFeedback(mspec.Name, use, m)
			statuses[use.Pattern.Name()] = c.Status
			comments = append(comments, c)
		}
		// 2.1b: match pattern groups (the variability extension): every
		// member is tried, the best-scoring one provides the feedback, and
		// its embeddings become available to constraints under its own name.
		for _, gu := range mspec.Groups {
			sp := parent.Child("group:" + gu.Group.Name)
			t0 := time.Now()
			c := g.groupFeedback(mspec.Name, gu, graph, embs, cache, mopts)
			st.MatchTime += time.Since(t0)
			sp.End()
			statuses[gu.Group.Name] = c.Status
			comments = append(comments, c)
		}
		// 2.2: match constraints.
		for _, con := range mspec.Constraints {
			sp := parent.Child("constraint:" + con.Name())
			t0 := time.Now()
			c, combos := checkConstraint(mspec.Name, con, graph, embs, statuses)
			st.ConstraintTime += time.Since(t0)
			st.ConstraintChecks++
			st.ConstraintCombos += int64(combos)
			sp.SetAttrInt("combos", int64(combos))
			sp.End()
			comments = append(comments, c)
		}
	}
	st.addWork(work)
	score := 0.0
	for _, c := range comments {
		score += c.Status.Lambda()
	}
	return comments, score
}

// groupFeedback evaluates one pattern group: each member is matched, the
// best-scoring comment wins, and the winning member's embeddings are stored
// so constraints can correlate against it.
func (g *Grader) groupFeedback(method string, gu GroupUse, graph *pdg.Graph, embs map[string][]match.Embedding, cache *matchCache, mopts match.Options) Comment {
	var best Comment
	var bestEmbs []match.Embedding
	var bestMember string
	for i, member := range gu.Group.Members {
		m, _ := cache.find(member, graph, mopts)
		c := provideFeedback(method, PatternUse{Pattern: member, Count: gu.Count}, m)
		if i == 0 || c.Status.Lambda() > best.Status.Lambda() {
			best, bestEmbs, bestMember = c, m, member.Name()
		}
	}
	embs[bestMember] = bestEmbs
	best.Kind = "group"
	best.Source = gu.Group.Name
	if best.Status == NotExpected && len(bestEmbs) < gu.Count && gu.Group.Missing != "" {
		best.Message = pattern.RenderFeedback(gu.Group.Missing, nil)
	}
	return best
}

// provideFeedback implements ProvideFeedback of Algorithm 2 for one pattern.
func provideFeedback(method string, use PatternUse, embs []match.Embedding) Comment {
	p := use.Pattern
	c := Comment{Method: method, Kind: "pattern", Source: p.Name()}
	switch {
	case len(embs) != use.Count:
		c.Status = NotExpected
		switch {
		case use.Count == 0:
			// A bad pattern was found: its Missing message is the warning.
			c.Message = pattern.RenderFeedback(p.Source.Missing, embs[0].Gamma)
		case len(embs) < use.Count:
			c.Message = pattern.RenderFeedback(p.Source.Missing, nil)
		default:
			c.Message = fmt.Sprintf("Found %d occurrences of %q but expected %d — check for duplicated or conflated logic",
				len(embs), p.Source.Description, use.Count)
		}
	default:
		if use.Count == 0 {
			// A bad pattern that is indeed absent.
			c.Status = Correct
			c.Message = pattern.RenderFeedback(p.Source.Present, nil)
			return c
		}
		allCorrect := true
		for _, e := range embs {
			if !e.AllCorrect() {
				allCorrect = false
				break
			}
		}
		if allCorrect {
			c.Status = Correct
		} else {
			c.Status = Incorrect
		}
		c.Message = pattern.RenderFeedback(p.Source.Present, embs[0].Gamma)
		c.Details = nodeDetails(p, embs)
	}
	return c
}

// nodeDetails renders per-node feedback for the found embeddings, deduped.
func nodeDetails(p *pattern.Compiled, embs []match.Embedding) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, e := range embs {
		for i, n := range p.Nodes {
			if e.Approx[i] {
				add(pattern.RenderFeedback(n.Feedback.Incorrect, e.Gamma))
			} else {
				add(pattern.RenderFeedback(n.Feedback.Correct, e.Gamma))
			}
		}
	}
	return out
}

// checkConstraint implements ConstraintMatching of Algorithm 2: NotExpected
// when any referenced pattern was NotExpected, else the constraint check.
// The second return value is the number of embedding combinations examined.
func checkConstraint(method string, con *constraint.Compiled, graph *pdg.Graph, embs map[string][]match.Embedding, statuses map[string]Status) (Comment, int) {
	c := Comment{Method: method, Kind: "constraint", Source: con.Name()}
	for _, pname := range con.Patterns() {
		if st, ok := statuses[pname]; ok && st == NotExpected {
			c.Status = NotExpected
			return c, 0
		}
	}
	res := con.Check(graph, embs)
	switch res.Status {
	case constraint.Correct:
		c.Status = Correct
	case constraint.Incorrect:
		c.Status = Incorrect
	default:
		c.Status = NotExpected
	}
	c.Message = res.Message()
	return c, res.Combos
}
