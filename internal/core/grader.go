// Package core implements the paper's grading engine: Algorithm 2
// (SubmissionMatching) on top of the EPDG builder, the pattern matcher and
// the constraint checker. This is the public API a course platform embeds.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"semfeed/internal/constraint"
	"semfeed/internal/java/ast"
	"semfeed/internal/java/inline"
	"semfeed/internal/java/parser"
	"semfeed/internal/match"
	"semfeed/internal/pattern"
	"semfeed/internal/pdg"
)

// PatternUse attaches a pattern to an expected method with its expected
// number of occurrences t̄(q, p). Count 0 declares a "bad pattern" that must
// not appear (e.g. updating a sentinel index twice).
type PatternUse struct {
	Pattern *pattern.Compiled
	Count   int
}

// GroupUse attaches a pattern group (a cluster of alternative patterns with
// the same semantics — the paper's variability extension) to an expected
// method with its expected occurrence count.
type GroupUse struct {
	Group *pattern.Group
	Count int
}

// MethodSpec describes one expected method q: the patterns the instructor
// expects to find in it, pattern groups covering strategy variability, and
// the constraints correlating patterns.
type MethodSpec struct {
	Name        string
	Patterns    []PatternUse
	Groups      []GroupUse
	Constraints []*constraint.Compiled
}

// AssignmentSpec wires patterns and constraints to the expected methods of
// one assignment (the mappings p̄, t̄ and c̄ of Algorithm 2).
type AssignmentSpec struct {
	Name    string
	Methods []MethodSpec
}

// PatternCount returns the total number of pattern uses across methods
// (column P of Table I counts per-assignment pattern selections).
func (s *AssignmentSpec) PatternCount() int {
	n := 0
	for _, m := range s.Methods {
		n += len(m.Patterns) + len(m.Groups)
	}
	return n
}

// ConstraintCount returns the total number of constraints across methods.
func (s *AssignmentSpec) ConstraintCount() int {
	n := 0
	for _, m := range s.Methods {
		n += len(m.Constraints)
	}
	return n
}

// Status classifies one feedback comment.
type Status int

// Comment statuses, with the Λ weights of Equation 3.
const (
	Correct     Status = iota // λ = 1
	Incorrect                 // λ = 0.5
	NotExpected               // λ = 0
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Correct:
		return "Correct"
	case Incorrect:
		return "Incorrect"
	default:
		return "NotExpected"
	}
}

// MarshalJSON renders the status by name so JSON reports are readable.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a status name.
func (s *Status) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"Correct"`:
		*s = Correct
	case `"Incorrect"`:
		*s = Incorrect
	case `"NotExpected"`:
		*s = NotExpected
	default:
		return fmt.Errorf("core: unknown status %s", data)
	}
	return nil
}

// Lambda returns the λ weight of the status (Equation 3).
func (s Status) Lambda() float64 {
	switch s {
	case Correct:
		return 1
	case Incorrect:
		return 0.5
	default:
		return 0
	}
}

// Comment is one personalized feedback item.
type Comment struct {
	Method  string // expected method q
	Kind    string // "pattern" or "constraint"
	Source  string // pattern or constraint name
	Status  Status
	Message string   // rendered top-level message
	Details []string // rendered per-node feedback lines
}

// Report is the output of grading one submission.
type Report struct {
	Assignment string
	Comments   []Comment
	Score      float64           // Λ(B)
	MaxScore   float64           // Λ if everything were Correct
	Bindings   map[string]string // expected method -> submission method
	Matched    bool              // false when the expected headers are absent
	Elapsed    time.Duration
}

// AllCorrect reports whether every comment is Correct.
func (r *Report) AllCorrect() bool {
	if !r.Matched || len(r.Comments) == 0 {
		return false
	}
	for _, c := range r.Comments {
		if c.Status != Correct {
			return false
		}
	}
	return true
}

// String renders the report as the student would see it.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Assignment %s — score %.1f/%.1f\n", r.Assignment, r.Score, r.MaxScore)
	if !r.Matched {
		sb.WriteString("  Your submission does not provide the expected method header(s); no feedback can be given.\n")
		return sb.String()
	}
	for _, c := range r.Comments {
		fmt.Fprintf(&sb, "  [%s] %s", c.Status, c.Message)
		if c.Message == "" {
			fmt.Fprintf(&sb, "(%s %s)", c.Kind, c.Source)
		}
		sb.WriteByte('\n')
		for _, d := range c.Details {
			fmt.Fprintf(&sb, "      - %s\n", d)
		}
	}
	return sb.String()
}

// Options tune the grader. The zero value applies the defaults.
type Options struct {
	// MatchOptions are passed through to the subgraph matcher.
	MatchOptions match.Options
	// BuildOptions select the EPDG construction conventions (ablations).
	BuildOptions pdg.BuildOpts
	// InlineHelpers expands calls to simple single-return helper methods
	// into the expected methods before building EPDGs, so decomposed
	// submissions still expose the computation to the patterns (the paper's
	// Section VII plan for non-expected methods).
	InlineHelpers bool
	// MaxMethodCombos caps the number of expected↔actual method bindings
	// tried (default 720).
	MaxMethodCombos int
}

func (o Options) maxCombos() int {
	if o.MaxMethodCombos > 0 {
		return o.MaxMethodCombos
	}
	return 720
}

// Grader grades submissions against assignment specs.
type Grader struct {
	opts Options
}

// NewGrader returns a grader with the given options.
func NewGrader(opts Options) *Grader { return &Grader{opts: opts} }

// Grade parses src and grades it against spec.
func (g *Grader) Grade(src string, spec *AssignmentSpec) (*Report, error) {
	unit, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return g.GradeUnit(unit, spec), nil
}

// GradeUnit grades a parsed compilation unit against spec (Algorithm 2).
func (g *Grader) GradeUnit(unit *ast.CompilationUnit, spec *AssignmentSpec) *Report {
	start := time.Now()
	report := &Report{Assignment: spec.Name, Bindings: map[string]string{}}
	for _, m := range spec.Methods {
		report.MaxScore += float64(len(m.Patterns) + len(m.Groups) + len(m.Constraints))
	}

	// Step 1: extract the EPDG of every submission method, optionally
	// inlining helper calls first.
	if g.opts.InlineHelpers {
		keep := map[string]bool{}
		for _, m := range spec.Methods {
			keep[m.Name] = true
		}
		unit = inline.Expand(unit, keep)
	}
	graphs := pdg.BuildAllWith(unit, g.opts.BuildOptions)
	if len(graphs) == 0 {
		report.Elapsed = time.Since(start)
		return report
	}
	methodNames := make([]string, 0, len(graphs))
	for name := range graphs {
		methodNames = append(methodNames, name)
	}
	sort.Strings(methodNames)

	// Step 2: try every combination of expected and existing methods, keep
	// the one maximizing Λ.
	best := -1.0
	for _, binding := range g.bindings(spec, methodNames) {
		comments, score := g.gradeBinding(spec, graphs, binding)
		if score > best {
			best = score
			report.Comments = comments
			report.Score = score
			report.Bindings = binding
			report.Matched = true
		}
	}
	report.Elapsed = time.Since(start)
	return report
}

// bindings enumerates injective mappings from expected method names to
// submission method names. When every expected name is present verbatim the
// identity binding is tried first (the header-enforcement fast path the
// paper describes); remaining permutations cover renamed methods.
func (g *Grader) bindings(spec *AssignmentSpec, methods []string) []map[string]string {
	expected := make([]string, len(spec.Methods))
	for i, m := range spec.Methods {
		expected[i] = m.Name
	}
	if len(expected) > len(methods) {
		return nil
	}
	have := map[string]bool{}
	for _, m := range methods {
		have[m] = true
	}
	var out []map[string]string
	identity := true
	for _, q := range expected {
		if !have[q] {
			identity = false
			break
		}
	}
	if identity {
		b := map[string]string{}
		for _, q := range expected {
			b[q] = q
		}
		return []map[string]string{b}
	}

	used := make([]bool, len(methods))
	cur := map[string]string{}
	var rec func(i int)
	rec = func(i int) {
		if len(out) >= g.opts.maxCombos() {
			return
		}
		if i == len(expected) {
			b := make(map[string]string, len(cur))
			for k, v := range cur {
				b[k] = v
			}
			out = append(out, b)
			return
		}
		for j, h := range methods {
			if used[j] {
				continue
			}
			used[j] = true
			cur[expected[i]] = h
			rec(i + 1)
			delete(cur, expected[i])
			used[j] = false
		}
	}
	rec(0)
	return out
}

// gradeBinding runs steps 2.1 and 2.2 of Algorithm 2 for one method binding
// and returns the comments with their Λ score.
func (g *Grader) gradeBinding(spec *AssignmentSpec, graphs map[string]*pdg.Graph, binding map[string]string) ([]Comment, float64) {
	var comments []Comment
	for _, mspec := range spec.Methods {
		graph := graphs[binding[mspec.Name]]
		if graph == nil {
			continue
		}
		embs := map[string][]match.Embedding{}
		statuses := map[string]Status{}
		// 2.1: match patterns.
		for _, use := range mspec.Patterns {
			m := match.FindOpts(use.Pattern, graph, g.opts.MatchOptions)
			embs[use.Pattern.Name()] = m
			c := provideFeedback(mspec.Name, use, m)
			statuses[use.Pattern.Name()] = c.Status
			comments = append(comments, c)
		}
		// 2.1b: match pattern groups (the variability extension): every
		// member is tried, the best-scoring one provides the feedback, and
		// its embeddings become available to constraints under its own name.
		for _, gu := range mspec.Groups {
			c := g.groupFeedback(mspec.Name, gu, graph, embs)
			statuses[gu.Group.Name] = c.Status
			comments = append(comments, c)
		}
		// 2.2: match constraints.
		for _, con := range mspec.Constraints {
			c := checkConstraint(mspec.Name, con, graph, embs, statuses)
			comments = append(comments, c)
		}
	}
	score := 0.0
	for _, c := range comments {
		score += c.Status.Lambda()
	}
	return comments, score
}

// groupFeedback evaluates one pattern group: each member is matched, the
// best-scoring comment wins, and the winning member's embeddings are stored
// so constraints can correlate against it.
func (g *Grader) groupFeedback(method string, gu GroupUse, graph *pdg.Graph, embs map[string][]match.Embedding) Comment {
	var best Comment
	var bestEmbs []match.Embedding
	var bestMember string
	for i, member := range gu.Group.Members {
		m := match.FindOpts(member, graph, g.opts.MatchOptions)
		c := provideFeedback(method, PatternUse{Pattern: member, Count: gu.Count}, m)
		if i == 0 || c.Status.Lambda() > best.Status.Lambda() {
			best, bestEmbs, bestMember = c, m, member.Name()
		}
	}
	embs[bestMember] = bestEmbs
	best.Kind = "group"
	best.Source = gu.Group.Name
	if best.Status == NotExpected && len(bestEmbs) < gu.Count && gu.Group.Missing != "" {
		best.Message = pattern.RenderFeedback(gu.Group.Missing, nil)
	}
	return best
}

// provideFeedback implements ProvideFeedback of Algorithm 2 for one pattern.
func provideFeedback(method string, use PatternUse, embs []match.Embedding) Comment {
	p := use.Pattern
	c := Comment{Method: method, Kind: "pattern", Source: p.Name()}
	switch {
	case len(embs) != use.Count:
		c.Status = NotExpected
		switch {
		case use.Count == 0:
			// A bad pattern was found: its Missing message is the warning.
			c.Message = pattern.RenderFeedback(p.Source.Missing, embs[0].Gamma)
		case len(embs) < use.Count:
			c.Message = pattern.RenderFeedback(p.Source.Missing, nil)
		default:
			c.Message = fmt.Sprintf("Found %d occurrences of %q but expected %d — check for duplicated or conflated logic",
				len(embs), p.Source.Description, use.Count)
		}
	default:
		if use.Count == 0 {
			// A bad pattern that is indeed absent.
			c.Status = Correct
			c.Message = pattern.RenderFeedback(p.Source.Present, nil)
			return c
		}
		allCorrect := true
		for _, e := range embs {
			if !e.AllCorrect() {
				allCorrect = false
				break
			}
		}
		if allCorrect {
			c.Status = Correct
		} else {
			c.Status = Incorrect
		}
		c.Message = pattern.RenderFeedback(p.Source.Present, embs[0].Gamma)
		c.Details = nodeDetails(p, embs)
	}
	return c
}

// nodeDetails renders per-node feedback for the found embeddings, deduped.
func nodeDetails(p *pattern.Compiled, embs []match.Embedding) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, e := range embs {
		for i, n := range p.Nodes {
			if e.Approx[i] {
				add(pattern.RenderFeedback(n.Feedback.Incorrect, e.Gamma))
			} else {
				add(pattern.RenderFeedback(n.Feedback.Correct, e.Gamma))
			}
		}
	}
	return out
}

// checkConstraint implements ConstraintMatching of Algorithm 2: NotExpected
// when any referenced pattern was NotExpected, else the constraint check.
func checkConstraint(method string, con *constraint.Compiled, graph *pdg.Graph, embs map[string][]match.Embedding, statuses map[string]Status) Comment {
	c := Comment{Method: method, Kind: "constraint", Source: con.Name()}
	for _, pname := range con.Patterns() {
		if st, ok := statuses[pname]; ok && st == NotExpected {
			c.Status = NotExpected
			return c
		}
	}
	res := con.Check(graph, embs)
	switch res.Status {
	case constraint.Correct:
		c.Status = Correct
	case constraint.Incorrect:
		c.Status = Incorrect
	default:
		c.Status = NotExpected
	}
	c.Message = res.Message()
	return c
}
