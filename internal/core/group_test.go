package core_test

import (
	"strings"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/kb"
	"semfeed/internal/pattern"
)

// TestGroupValidation covers the group constructor.
func TestGroupValidation(t *testing.T) {
	a := kb.Pattern("seq-even-access")
	b := kb.Extension("stride-2-even-access")
	if _, err := pattern.NewGroup("", "d", "m", a, b); err == nil {
		t.Error("empty name must be rejected")
	}
	if _, err := pattern.NewGroup("g", "d", "m", a); err == nil {
		t.Error("single-member groups must be rejected")
	}
	if _, err := pattern.NewGroup("g", "d", "m", a, a); err == nil {
		t.Error("duplicate members must be rejected")
	}
	if _, err := pattern.NewGroup("g", "d", "m", a, b); err != nil {
		t.Errorf("valid group rejected: %v", err)
	}
}

// groupedAssignment1Spec rebuilds the Assignment 1 spec with the even-access
// variability group in place of the plain seq-even-access pattern — the
// paper's Section VII plan for eliminating the Section VI-B third
// discrepancy class.
func groupedAssignment1Spec(t *testing.T) *core.AssignmentSpec {
	t.Helper()
	base := assignments.Get("assignment1").Spec
	m := base.Methods[0]
	grouped := core.MethodSpec{Name: m.Name, Groups: []core.GroupUse{
		{Group: kb.EvenAccessGroup(), Count: 1},
		{Group: kb.MulAccumGroup(), Count: 1},
	}}
	for _, use := range m.Patterns {
		switch use.Pattern.Name() {
		case "seq-even-access", "cond-accumulate-mul":
			continue // replaced by the groups
		}
		grouped.Patterns = append(grouped.Patterns, use)
	}
	// Constraints referencing specific group members apply only when that
	// member wins; correlating across alternatives is future work beyond
	// this extension, so the grouped spec drops those two constraints.
	for _, con := range m.Constraints {
		switch con.Name() {
		case "even-access-is-multiplied", "product-is-printed":
			continue
		}
		grouped.Constraints = append(grouped.Constraints, con)
	}
	return &core.AssignmentSpec{Name: "assignment1-grouped", Methods: []core.MethodSpec{grouped}}
}

// TestGroupResolvesStrideDiscrepancy: under the grouped spec, the i += 2
// strategy earns positive feedback (it is functionally correct), while the
// parity-check strategy still matches through the canonical member.
func TestGroupResolvesStrideDiscrepancy(t *testing.T) {
	a := assignments.Get("assignment1")
	spec := groupedAssignment1Spec(t)
	g := core.NewGrader(core.Options{})

	// The canonical parity-check reference still passes.
	rep, err := g.Grade(a.Reference(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllCorrect() {
		t.Errorf("reference under grouped spec:\n%s", rep)
	}

	// The stride-2 variant — a discrepancy under the plain spec — is now
	// recognized through the group's second member.
	stride := a.Synth.RenderWith(map[string]int{"evenLoop": 1})
	rep, err = g.Grade(stride, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllCorrect() {
		t.Errorf("stride-2 variant should be all-Correct under the grouped spec:\n%s", rep)
	}
	found := false
	for _, c := range rep.Comments {
		if c.Kind == "group" && c.Source == "even-access-any" {
			found = true
			if !strings.Contains(c.Message, "striding") {
				t.Errorf("group feedback should come from the stride member: %q", c.Message)
			}
		}
	}
	if !found {
		t.Error("no group comment in the report")
	}
}

// TestGroupMissing: when no member matches, the group's own Missing message
// is delivered.
func TestGroupMissing(t *testing.T) {
	spec := groupedAssignment1Spec(t)
	src := `void assignment1(int[] a) {
	  int odd = 0;
	  for (int i = 0; i < a.length; i++)
	    if (i % 2 == 1)
	      odd += a[i];
	  System.out.println(odd);
	}`
	rep, err := core.NewGrader(core.Options{}).Grade(src, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Comments {
		if c.Source == "even-access-any" {
			if c.Status != core.NotExpected {
				t.Errorf("group status = %s, want NotExpected", c.Status)
			}
			if !strings.Contains(c.Message, "not visiting the even positions") {
				t.Errorf("group missing message = %q", c.Message)
			}
			return
		}
	}
	t.Error("no group comment found")
}

// TestGroupWrongStrideStillIncorrect: a stride of 3 approximates the stride
// member, so feedback is Incorrect (not just missing).
func TestGroupWrongStrideStillIncorrect(t *testing.T) {
	spec := groupedAssignment1Spec(t)
	src := `void assignment1(int[] a) {
	  int odd = 0;
	  int even = 1;
	  for (int i = 0; i < a.length; i++)
	    if (i % 2 == 1)
	      odd += a[i];
	  for (int i = 0; i < a.length; i += 3)
	    even *= a[i];
	  System.out.println(odd);
	  System.out.println(even);
	}`
	rep, err := core.NewGrader(core.Options{}).Grade(src, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Comments {
		if c.Source == "even-access-any" {
			if c.Status != core.Incorrect {
				t.Errorf("group status = %s, want Incorrect\n%s", c.Status, rep)
			}
			return
		}
	}
	t.Error("no group comment found")
}
