package core_test

import (
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/pdg"
)

// TestElseNormalizationUnderFullSpec documents a structural subtlety of the
// else extension: under if/else, the branch-untaken path keeps the
// initializations alive, so the data-flow count expected by assign-print
// (t = 2) legitimately becomes 4 and the occurrence check fires. The
// pattern-level parity feedback is fully positive; only the count-based
// pieces remain structure-dependent — the residual variability the paper's
// future-work section anticipates.
func TestElseNormalizationUnderFullSpec(t *testing.T) {
	elseSrc := `void assignment1(int[] a) {
  int odd = 0;
  int even = 1;
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 0)
      even *= a[i];
    else
      odd += a[i];
  System.out.println(odd);
  System.out.println(even);
}`
	a := assignments.Get("assignment1")
	g := core.NewGrader(core.Options{BuildOptions: pdg.BuildOpts{NormalizeElse: true}})
	rep, err := g.Grade(elseSrc, a.Spec)
	if err != nil {
		t.Fatal(err)
	}
	status := map[string]core.Status{}
	for _, c := range rep.Comments {
		status[c.Source] = c.Status
	}
	for _, src := range []string{"seq-odd-access", "seq-even-access",
		"cond-accumulate-add", "cond-accumulate-mul",
		"odd-access-is-summed", "even-access-is-multiplied"} {
		if status[src] != core.Correct {
			t.Errorf("%s = %s, want Correct\n%s", src, status[src], rep)
		}
	}
	if status["assign-print"] != core.NotExpected {
		t.Errorf("assign-print = %s; the if/else structure doubles the print flows", status["assign-print"])
	}
}
