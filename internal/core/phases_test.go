package core_test

import (
	"context"
	"strings"
	"testing"

	"semfeed/internal/analysis"
	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/obs"
)

// TestGradePhaseSpans is the phase-attribution contract of the tentpole: one
// traced grade must decompose into phase-tagged child spans (at least five on
// the full path) and move the matching semfeed_phase_ns slices, so a trace
// tree and the dimensional metrics tell the same cost story.
func TestGradePhaseSpans(t *testing.T) {
	obs.Enable()
	obs.EnableTracing()
	defer obs.Disable()
	defer obs.DisableTracing()

	a := assignments.Get("assignment1")
	grader := core.NewGrader(core.Options{Analyzers: analysis.DefaultDriver()})
	if _, err := grader.Grade(a.Reference(), a.Spec); err != nil {
		t.Fatal(err)
	}

	td := obs.LastTrace()
	if td == nil {
		t.Fatal("no trace recorded")
	}
	// Collect the phase tags of the root's direct children.
	phases := map[string]int{}
	var phaseSpans int
	for _, sp := range td.Spans {
		for _, at := range sp.Attrs {
			if at.Key == "phase" {
				phases[at.Value]++
				phaseSpans++
			}
		}
	}
	if phaseSpans < 5 {
		t.Errorf("trace has %d phase-tagged spans, want >= 5:\n%s", phaseSpans, td.Tree())
	}
	for _, phase := range []string{"parse", "build", "analysis", "match", "constraint"} {
		if phases[phase] == 0 {
			t.Errorf("no span tagged phase=%s in:\n%s", phase, td.Tree())
		}
	}
	// Constraint time can legitimately round to zero on an assignment with
	// few constraints, so assert the slices that always do real work.
	for _, phase := range []string{"parse", "build", "analysis", "match"} {
		if got := obs.PhaseNS.Value("assignment1", phase); got <= 0 {
			t.Errorf(`semfeed_phase_ns{assignment="assignment1",phase=%q} = %d, want > 0`, phase, got)
		}
	}

	// The labeled grade counter attributes the outcome per assignment.
	if got := obs.GradesTotal.Value("assignment1", "ok"); got == 0 {
		t.Error(`semfeed_grades_total{assignment="assignment1",status="ok"} did not move`)
	}
}

// TestGradePhaseWorkCounters spot-checks that phase spans carry the work
// counters that make a trace self-explaining: EPDG size on the build span,
// combination counts on the match sweep.
func TestGradePhaseWorkCounters(t *testing.T) {
	obs.EnableTracing()
	defer obs.DisableTracing()
	a := assignments.Get("assignment1")
	if _, err := core.NewGrader(core.Options{}).Grade(a.Reference(), a.Spec); err != nil {
		t.Fatal(err)
	}
	tree := obs.LastTrace().Tree()
	for _, want := range []string{
		"parse",
		"build_epdg", "nodes=",
		"match_sweep", "combos=",
		"constraint_check", "checks=",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}
}

// TestGradeAdoptsInboundTraceparent grades under a context carrying a remote
// trace identity and asserts the recorded trace remembers it — the join key
// a distributed tracing backend needs to stitch the cross-process tree.
func TestGradeAdoptsInboundTraceparent(t *testing.T) {
	obs.EnableTracing()
	defer obs.DisableTracing()
	tc := obs.TraceContext{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:  "00f067aa0ba902b7",
		Sampled: true,
	}
	ctx := obs.WithTraceContext(context.Background(), tc)
	a := assignments.Get("assignment1")
	if _, err := core.NewGrader(core.Options{}).GradeContext(ctx, a.Reference(), a.Spec); err != nil {
		t.Fatal(err)
	}
	td := obs.LastTrace()
	if td == nil {
		t.Fatal("no trace recorded")
	}
	if td.TraceParent != tc.Traceparent() {
		t.Errorf("trace parent = %q, want %q", td.TraceParent, tc.Traceparent())
	}
}

// TestGradeStatusAttribution checks the failure statuses: a parse error
// grades as status=error, so semfeed_grades_total separates broken
// submissions from graded ones per assignment.
func TestGradeStatusAttribution(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	a := assignments.Get("assignment1")
	before := obs.GradesTotal.Value("assignment1", "error")
	if _, err := core.NewGrader(core.Options{}).Grade("class Broken {", a.Spec); err == nil {
		t.Fatal("parse error expected")
	}
	if got := obs.GradesTotal.Value("assignment1", "error") - before; got != 1 {
		t.Errorf(`semfeed_grades_total{assignment="assignment1",status="error"} moved by %d, want 1`, got)
	}
}
