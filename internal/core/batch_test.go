package core_test

import (
	"context"
	"encoding/json"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/java/parser"
	"semfeed/internal/obs"
	"semfeed/internal/pattern"
)

// batchSample renders n submissions of the assignment as batch work items.
func batchSample(t testing.TB, id string, n int) (*assignments.Assignment, []core.Submission) {
	t.Helper()
	a := assignments.Get(id)
	if a == nil {
		t.Fatalf("unknown assignment %q", id)
	}
	var subs []core.Submission
	for _, k := range a.Synth.Sample(n) {
		subs = append(subs, core.Submission{ID: a.ID, Src: a.Synth.Render(k)})
	}
	return a, subs
}

// normalizeReport strips the timing-bearing fields so reports can be compared
// byte-for-byte across sequential and concurrent runs.
func normalizeReport(t *testing.T, rep *core.Report) string {
	t.Helper()
	cp := *rep
	cp.Elapsed = 0
	cp.Stats = nil
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestGradeAllMatchesSequential is the batch engine's correctness contract:
// modulo Stats and Elapsed, GradeAll must produce byte-identical reports to
// one-at-a-time Grade calls, in input order.
func TestGradeAllMatchesSequential(t *testing.T) {
	a, subs := batchSample(t, "assignment1", 48)
	g := core.NewGrader(core.Options{})

	want := make([]string, len(subs))
	for i, s := range subs {
		rep, err := g.Grade(s.Src, a.Spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = normalizeReport(t, rep)
	}

	bg := core.NewBatchGrader(g, core.BatchOptions{Workers: 8})
	results, stats := bg.GradeAll(context.Background(), a.Spec, subs)
	if len(results) != len(subs) {
		t.Fatalf("got %d results for %d submissions", len(results), len(subs))
	}
	if stats.Graded != len(subs) || stats.Failed != 0 || stats.Cancelled != 0 {
		t.Fatalf("stats = %v, want all %d graded", stats, len(subs))
	}
	for i, res := range results {
		if res.Index != i || res.Err != nil || res.Report == nil {
			t.Fatalf("result %d: index=%d err=%v report=%v", i, res.Index, res.Err, res.Report != nil)
		}
		if got := normalizeReport(t, res.Report); got != want[i] {
			t.Errorf("submission %d: batch report differs from sequential\n batch: %s\n  seq: %s", i, got, want[i])
		}
	}
}

// TestGradeAllPoisonedSubmission checks per-submission error isolation: one
// unparseable submission fails alone, everything else still grades.
func TestGradeAllPoisonedSubmission(t *testing.T) {
	a, subs := batchSample(t, "assignment1", 12)
	poisoned := 5
	subs[poisoned].Src = "public class { this is not java ;;;"

	bg := core.NewBatchGrader(core.NewGrader(core.Options{}), core.BatchOptions{Workers: 4})
	results, stats := bg.GradeAll(context.Background(), a.Spec, subs)
	if stats.Failed != 1 || stats.Graded != len(subs)-1 {
		t.Fatalf("stats = %v, want 1 failed / %d graded", stats, len(subs)-1)
	}
	for i, res := range results {
		if i == poisoned {
			if res.Err == nil || res.Report != nil {
				t.Errorf("poisoned submission: err=%v report=%v, want parse error only", res.Err, res.Report != nil)
			}
			continue
		}
		if res.Err != nil || res.Report == nil {
			t.Errorf("submission %d: err=%v, want graded report", i, res.Err)
		}
	}
}

// TestGradeAllCancelledContext: a batch offered an already-cancelled context
// grades nothing and marks every submission with the context error.
func TestGradeAllCancelledContext(t *testing.T) {
	a, subs := batchSample(t, "assignment1", 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	bg := core.NewBatchGrader(core.NewGrader(core.Options{}), core.BatchOptions{Workers: 4})
	results, stats := bg.GradeAll(ctx, a.Spec, subs)
	if stats.Cancelled != len(subs) || stats.Graded != 0 {
		t.Fatalf("stats = %v, want all %d cancelled", stats, len(subs))
	}
	for i, res := range results {
		if res.Err != context.Canceled {
			t.Errorf("submission %d: err = %v, want context.Canceled", i, res.Err)
		}
	}
}

// TestGradeAllCancelMidBatch cancels from the OnResult stream after the
// third report: with one worker the remaining submissions must be skipped,
// and every submission is accounted for exactly once.
func TestGradeAllCancelMidBatch(t *testing.T) {
	a, subs := batchSample(t, "assignment1", 10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var delivered atomic.Int64
	bg := core.NewBatchGrader(core.NewGrader(core.Options{}), core.BatchOptions{
		Workers: 1,
		OnResult: func(res core.BatchResult) {
			if delivered.Add(1) == 3 {
				cancel()
			}
		},
	})
	_, stats := bg.GradeAll(ctx, a.Spec, subs)
	if stats.Graded != 3 {
		t.Errorf("graded = %d, want exactly 3 before cancellation (1 worker)", stats.Graded)
	}
	if stats.Cancelled != len(subs)-3 {
		t.Errorf("cancelled = %d, want %d", stats.Cancelled, len(subs)-3)
	}
	if got := stats.Graded + stats.Failed + stats.Cancelled; got != len(subs) {
		t.Errorf("accounted %d of %d submissions", got, len(subs))
	}
	if int(delivered.Load()) != len(subs) {
		t.Errorf("OnResult delivered %d results, want %d (cancelled ones included)", delivered.Load(), len(subs))
	}
}

// TestGradeAllWithMetricsAndTracing is the batch engine's -race proof with
// the observability layer fully on: concurrent workers, concurrent metric
// snapshots, and the batch counters accounting for every submission.
func TestGradeAllWithMetricsAndTracing(t *testing.T) {
	obs.Enable()
	obs.EnableTracing()
	defer obs.Disable()
	defer obs.DisableTracing()

	a, subs := batchSample(t, "assignment1", 32)
	before := obs.TakeSnapshot()

	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = obs.TakeSnapshot()
			if td := obs.LastTrace(); td != nil {
				_ = td.Tree()
			}
		}
	}()

	bg := core.NewBatchGrader(core.NewGrader(core.Options{}), core.BatchOptions{Workers: 8})
	results, stats := bg.GradeAll(context.Background(), a.Spec, subs)
	close(done)
	readers.Wait()

	if stats.Graded != len(subs) {
		t.Fatalf("stats = %v, want %d graded", stats, len(subs))
	}
	for i, res := range results {
		if res.Err != nil || res.Report == nil || res.Report.Stats.MatchCalls == 0 {
			t.Fatalf("submission %d: err=%v, stats not populated under concurrency", i, res.Err)
		}
	}
	after := obs.TakeSnapshot()
	if got := after.Counter("semfeed_batch_total") - before.Counter("semfeed_batch_total"); got != 1 {
		t.Errorf("batch_total moved by %d, want 1", got)
	}
	if got := after.Counter("semfeed_batch_submissions_total") - before.Counter("semfeed_batch_submissions_total"); got != int64(len(subs)) {
		t.Errorf("batch_submissions_total moved by %d, want %d", got, len(subs))
	}
	if got := after.Counter("semfeed_grades_total") - before.Counter("semfeed_grades_total"); got < int64(len(subs)) {
		t.Errorf("grades_total moved by %d, want >= %d", got, len(subs))
	}
}

// TestMatchCacheAcrossBindings pins the E×A memoization: with 2 expected and
// 3 submission methods (no identity binding), Algorithm 2 scores 6 bindings
// and would run 12 pattern searches; the per-grade cache must compute only
// the 6 distinct (pattern, method) pairs and serve the rest as hits.
func TestMatchCacheAcrossBindings(t *testing.T) {
	mkPattern := func(name, expr string) *pattern.Compiled {
		return pattern.MustCompile(&pattern.Pattern{
			Name: name,
			Vars: []string{"v"},
			Nodes: []pattern.Node{
				{ID: "u1", Type: "Return", Exact: []string{expr}},
			},
		})
	}
	spec := &core.AssignmentSpec{
		Name: "renamed",
		Methods: []core.MethodSpec{
			{Name: "alpha", Patterns: []core.PatternUse{{Pattern: mkPattern("ret-sum", "return v + 1"), Count: 1}}},
			{Name: "beta", Patterns: []core.PatternUse{{Pattern: mkPattern("ret-double", "return v * 2"), Count: 1}}},
		},
	}
	src := `public class C {
	  static int one(int x) { return x + 1; }
	  static int two(int x) { return x * 2; }
	  static int three(int x) { return x - 3; }
	}`
	unit, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rep := core.NewGrader(core.Options{}).GradeUnit(unit, spec)
	if rep.Stats.MethodCombos != 6 {
		t.Fatalf("method combos = %d, want 6 (3P2 bindings)", rep.Stats.MethodCombos)
	}
	if rep.Stats.MatchCacheMisses != 6 {
		t.Errorf("cache misses = %d, want 6 distinct (pattern, method) pairs", rep.Stats.MatchCacheMisses)
	}
	if rep.Stats.MatchCacheHits != 6 {
		t.Errorf("cache hits = %d, want 6 (12 searches - 6 distinct pairs)", rep.Stats.MatchCacheHits)
	}
	if rep.Stats.MatchCalls != 6 {
		t.Errorf("match calls = %d, want 6: cached searches must not re-run Algorithm 1", rep.Stats.MatchCalls)
	}
	if !rep.Matched || rep.Bindings["alpha"] != "one" || rep.Bindings["beta"] != "two" {
		t.Errorf("bindings = %v, want alpha→one beta→two", rep.Bindings)
	}
}

// BenchmarkGradeAll measures batch throughput over the assignment1 sample at
// several pool sizes. The workload is embarrassingly parallel: on an N-core
// machine the expected speedup at 4 workers is ~4× (bounded by cores); on a
// single-core runner the sub-benchmarks coincide, which is itself the
// regression signal that per-submission work has not grown.
func BenchmarkGradeAll(b *testing.B) {
	a, subs := batchSample(b, "assignment1", 64)
	g := core.NewGrader(core.Options{})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			bg := core.NewBatchGrader(g, core.BatchOptions{Workers: workers})
			b.ReportAllocs()
			b.ResetTimer()
			var graded int
			var wall float64
			for i := 0; i < b.N; i++ {
				results, stats := bg.GradeAll(context.Background(), a.Spec, subs)
				if stats.Failed > 0 {
					b.Fatalf("batch failed: %v", stats)
				}
				graded += len(results)
				wall += stats.Wall.Seconds()
			}
			b.ReportMetric(float64(graded)/wall, "subs/sec")
		})
	}
}
