package core_test

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/obs"
)

// TestConcurrentGrading exercises the MOOC deployment shape: one shared
// grader and assignment spec, many submissions graded in parallel. The
// knowledge base, compiled patterns and constraints must be safely shareable.
func TestConcurrentGrading(t *testing.T) {
	a := assignments.Get("assignment1")
	g := core.NewGrader(core.Options{})
	sample := a.Synth.Sample(64)

	// Sequential baseline for cross-checking results.
	wantCorrect := make([]bool, len(sample))
	for i, k := range sample {
		rep, err := g.Grade(a.Synth.Render(k), a.Spec)
		if err != nil {
			t.Fatal(err)
		}
		wantCorrect[i] = rep.AllCorrect()
	}

	var wg sync.WaitGroup
	errs := make([]error, len(sample))
	got := make([]bool, len(sample))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sample); i += 8 {
				rep, err := g.Grade(a.Synth.Render(sample[i]), a.Spec)
				if err != nil {
					errs[i] = err
					continue
				}
				got[i] = rep.AllCorrect()
			}
		}(w)
	}
	wg.Wait()
	for i := range sample {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", sample[i], errs[i])
		}
		if got[i] != wantCorrect[i] {
			t.Errorf("submission %d: concurrent verdict %v != sequential %v", sample[i], got[i], wantCorrect[i])
		}
	}
}

// TestConcurrentGradingWithMetrics grades in parallel with the observability
// layer fully on (metrics and tracing) while concurrent readers take
// snapshots, write the Prometheus exposition and render the latest span
// tree. Run under -race, this is the data-race proof for the obs layer; it
// also checks that the shared counters account for every grade.
func TestConcurrentGradingWithMetrics(t *testing.T) {
	obs.Enable()
	obs.EnableTracing()
	defer obs.Disable()
	defer obs.DisableTracing()

	a := assignments.Get("assignment1")
	g := core.NewGrader(core.Options{})
	sample := a.Synth.Sample(48)
	before := obs.TakeSnapshot()

	done := make(chan struct{})
	var readerErr atomic.Value
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := obs.TakeSnapshot()
				if snap.Counter("semfeed_grades_total") < before.Counter("semfeed_grades_total") {
					readerErr.Store("grades_total went backwards")
					return
				}
				if err := obs.WriteProm(io.Discard); err != nil {
					readerErr.Store(err.Error())
					return
				}
				if td := obs.LastTrace(); td != nil {
					_ = td.Tree()
				}
			}
		}()
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, len(sample))
	stats := make([]*core.Stats, len(sample))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sample); i += workers {
				rep, err := g.Grade(a.Synth.Render(sample[i]), a.Spec)
				if err != nil {
					errs[i] = err
					continue
				}
				stats[i] = rep.Stats
			}
		}(w)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	if msg := readerErr.Load(); msg != nil {
		t.Fatalf("metrics reader: %v", msg)
	}
	var wantSteps int64
	for i := range sample {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", sample[i], errs[i])
		}
		if stats[i] == nil || stats[i].MatchCalls == 0 {
			t.Fatalf("submission %d: stats not populated under concurrency", sample[i])
		}
		wantSteps += stats[i].MatchSteps
	}
	after := obs.TakeSnapshot()
	if got := after.Counter("semfeed_grades_total") - before.Counter("semfeed_grades_total"); got < int64(len(sample)) {
		t.Errorf("grades_total moved by %d, want >= %d", got, len(sample))
	}
	// Per-report stats and the shared registry must agree on matcher work:
	// other tests do not run concurrently, so the counter delta is exactly
	// the sum of this test's per-report step counts.
	if got := after.Counter("semfeed_match_steps_total") - before.Counter("semfeed_match_steps_total"); got < wantSteps {
		t.Errorf("match_steps_total moved by %d, want >= %d (sum of per-report stats)", got, wantSteps)
	}
}
