package core_test

import (
	"sync"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
)

// TestConcurrentGrading exercises the MOOC deployment shape: one shared
// grader and assignment spec, many submissions graded in parallel. The
// knowledge base, compiled patterns and constraints must be safely shareable.
func TestConcurrentGrading(t *testing.T) {
	a := assignments.Get("assignment1")
	g := core.NewGrader(core.Options{})
	sample := a.Synth.Sample(64)

	// Sequential baseline for cross-checking results.
	wantCorrect := make([]bool, len(sample))
	for i, k := range sample {
		rep, err := g.Grade(a.Synth.Render(k), a.Spec)
		if err != nil {
			t.Fatal(err)
		}
		wantCorrect[i] = rep.AllCorrect()
	}

	var wg sync.WaitGroup
	errs := make([]error, len(sample))
	got := make([]bool, len(sample))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sample); i += 8 {
				rep, err := g.Grade(a.Synth.Render(sample[i]), a.Spec)
				if err != nil {
					errs[i] = err
					continue
				}
				got[i] = rep.AllCorrect()
			}
		}(w)
	}
	wg.Wait()
	for i := range sample {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", sample[i], errs[i])
		}
		if got[i] != wantCorrect[i] {
			t.Errorf("submission %d: concurrent verdict %v != sequential %v", sample[i], got[i], wantCorrect[i])
		}
	}
}
