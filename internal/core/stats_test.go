package core_test

import (
	"encoding/json"
	"strings"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/obs"
)

// TestReportStatsPopulated checks the per-report cost accounting block: a
// graded reference solution must report where the time went and how much
// matcher work was done, and the block must appear in the report JSON.
func TestReportStatsPopulated(t *testing.T) {
	a := assignments.Get("assignment1")
	rep, err := core.NewGrader(core.Options{}).Grade(a.Reference(), a.Spec)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st == nil {
		t.Fatal("report has no stats block")
	}
	if st.ParseTime <= 0 || st.BuildTime <= 0 || st.MatchTime <= 0 || st.TotalTime <= 0 {
		t.Errorf("stage durations not populated: %+v", st)
	}
	if st.TotalTime < st.BuildTime+st.MatchTime {
		t.Errorf("total %v < build %v + match %v", st.TotalTime, st.BuildTime, st.MatchTime)
	}
	if st.Methods == 0 || st.EPDGNodes == 0 || st.EPDGEdges == 0 {
		t.Errorf("EPDG size counters not populated: %+v", st)
	}
	if st.MethodCombos == 0 {
		t.Error("no method combination was counted")
	}
	if st.MatchCalls == 0 || st.MatchSteps == 0 {
		t.Errorf("matcher work counters not populated: %+v", st)
	}
	if st.Embeddings == 0 {
		t.Error("the reference solution should produce embeddings")
	}
	if a.Spec.ConstraintCount() > 0 && st.ConstraintChecks == 0 {
		t.Error("constraint checks not counted")
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"stats"`, `"match_steps"`, `"match_backtracks"`, `"build_ns"`, `"method_combos"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON missing %s:\n%.600s", key, data)
		}
	}
}

// TestGradeTrace checks the span taxonomy of one traced grade: the root
// grade span with the build and binding stages beneath it, and per-pattern
// match spans beneath the bindings.
func TestGradeTrace(t *testing.T) {
	obs.EnableTracing()
	defer obs.DisableTracing()
	a := assignments.Get("assignment1")
	if _, err := core.NewGrader(core.Options{}).Grade(a.Reference(), a.Spec); err != nil {
		t.Fatal(err)
	}
	td := obs.LastTrace()
	if td == nil {
		t.Fatal("no trace recorded")
	}
	if td.Name != "grade/assignment1" {
		t.Errorf("trace name = %q", td.Name)
	}
	tree := td.Tree()
	for _, want := range []string{"grade/assignment1", "build_epdg", "binding", "match:", "score="} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}
}

// TestGradeMetricsFlow checks that one grade moves the pipeline counters.
func TestGradeMetricsFlow(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	before := obs.TakeSnapshot()
	a := assignments.Get("assignment1")
	if _, err := core.NewGrader(core.Options{}).Grade(a.Reference(), a.Spec); err != nil {
		t.Fatal(err)
	}
	after := obs.TakeSnapshot()
	for _, name := range []string{
		"semfeed_grades_total",
		"semfeed_parses_total",
		"semfeed_epdg_builds_total",
		"semfeed_match_calls_total",
		"semfeed_match_steps_total",
		"semfeed_grade_matched_total",
	} {
		if after.Counter(name) <= before.Counter(name) {
			t.Errorf("%s did not move: %d -> %d", name, before.Counter(name), after.Counter(name))
		}
	}
	if g := after.Gauges["semfeed_grades_inflight"]; g != 0 {
		t.Errorf("inflight gauge left at %d after grading", g)
	}
}
