package core_test

import (
	"context"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/obs"
)

// TestMatchCacheCountersConsistent pins the accounting invariant of the
// per-grade match cache under parallel batch grading: every lookup is
// classified as exactly one of hit or miss, so the shared counters satisfy
// lookups == hits + misses even when many grades increment them
// concurrently. Run under -race, this is also the data-race proof for the
// cache's counter path.
func TestMatchCacheCountersConsistent(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	a := assignments.Get("assignment1")
	subs := make([]core.Submission, 0, 48)
	for _, k := range a.Synth.Sample(48) {
		subs = append(subs, core.Submission{Src: a.Synth.Render(k)})
	}

	before := obs.TakeSnapshot()
	bg := core.NewBatchGrader(core.NewGrader(core.Options{}), core.BatchOptions{Workers: 8})
	results, stats := bg.GradeAll(context.Background(), a.Spec, subs)
	if stats.Failed > 0 || stats.Cancelled > 0 {
		t.Fatalf("batch did not grade cleanly: %+v", stats)
	}
	after := obs.TakeSnapshot()

	lookups := after.Counter("semfeed_match_cache_lookups_total") - before.Counter("semfeed_match_cache_lookups_total")
	hits := after.Counter("semfeed_match_cache_hits_total") - before.Counter("semfeed_match_cache_hits_total")
	misses := after.Counter("semfeed_match_cache_misses_total") - before.Counter("semfeed_match_cache_misses_total")

	if lookups == 0 {
		t.Fatal("no cache lookups recorded — is the per-grade cache wired in?")
	}
	if lookups != hits+misses {
		t.Fatalf("cache counters inconsistent: lookups=%d, hits=%d + misses=%d = %d",
			lookups, hits, misses, hits+misses)
	}

	// Cross-check against the per-report stats, which are counted locally
	// (not via the shared registry) and summed here.
	var wantHits, wantMisses int64
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.ID, res.Err)
		}
		wantHits += res.Report.Stats.MatchCacheHits
		wantMisses += res.Report.Stats.MatchCacheMisses
	}
	if hits != wantHits || misses != wantMisses {
		t.Fatalf("registry counters (hits=%d misses=%d) disagree with summed per-report stats (hits=%d misses=%d)",
			hits, misses, wantHits, wantMisses)
	}
}
