package core_test

import (
	"encoding/json"
	"strings"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
)

func TestReportJSONRoundTrip(t *testing.T) {
	a := assignments.Get("assignment1")
	rep, err := core.NewGrader(core.Options{}).Grade(a.Reference(), a.Spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Correct"`) {
		t.Errorf("statuses should serialize by name:\n%s", data)
	}
	var back core.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Score != rep.Score || len(back.Comments) != len(rep.Comments) {
		t.Errorf("round trip lost data: %+v", back)
	}
	for i := range back.Comments {
		if back.Comments[i].Status != rep.Comments[i].Status {
			t.Errorf("comment %d status mismatch", i)
		}
	}
}

func TestStatusUnmarshalRejectsUnknown(t *testing.T) {
	var s core.Status
	if err := json.Unmarshal([]byte(`"Maybe"`), &s); err == nil {
		t.Error("unknown status names must be rejected")
	}
}
