package synth_test

import (
	"strings"
	"testing"
	"testing/quick"

	"semfeed/internal/synth"
)

func demo() *synth.Spec {
	return &synth.Spec{
		Name:     "demo",
		Template: "int @{name} = @{init};\n@{name} @{op} 2;",
		Choices: []synth.Choice{
			{ID: "name", Options: []string{"x", "y", "z"}},
			{ID: "init", Options: []string{"0", "1"}},
			{ID: "op", Options: []string{"+=", "*="}},
		},
	}
}

func TestValidateAndSize(t *testing.T) {
	s := demo()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 12 {
		t.Errorf("size = %d, want 12", s.Size())
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(*synth.Spec)
	}{
		{"empty-options", func(s *synth.Spec) { s.Choices[0].Options = nil }},
		{"duplicate-choice", func(s *synth.Spec) { s.Choices[1].ID = "name" }},
		{"unused-choice", func(s *synth.Spec) {
			s.Choices = append(s.Choices, synth.Choice{ID: "ghost", Options: []string{"a"}})
		}},
		{"unknown-placeholder", func(s *synth.Spec) { s.Template += " @{mystery}" }},
		{"unterminated", func(s *synth.Spec) { s.Template += " @{oops" }},
		{"circular", func(s *synth.Spec) {
			s.Choices[0].Options = []string{"@{init}"}
			s.Choices[1].Options = []string{"@{name}"}
		}},
	}
	for _, c := range cases {
		s := demo()
		c.f(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
}

func TestReferenceIsAllZero(t *testing.T) {
	s := demo()
	if s.Reference() != s.Render(0) {
		t.Error("Reference must be submission 0")
	}
	if !strings.Contains(s.Reference(), "int x = 0") {
		t.Errorf("reference = %q", s.Reference())
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	s := demo()
	seen := map[string]bool{}
	for k := int64(0); k < s.Size(); k++ {
		src := s.Render(k)
		if seen[src] {
			t.Fatalf("index %d renders a duplicate", k)
		}
		seen[src] = true
	}
	if int64(len(seen)) != s.Size() {
		t.Errorf("distinct renderings = %d, want %d", len(seen), s.Size())
	}
}

func TestNestedPlaceholders(t *testing.T) {
	s := &synth.Spec{
		Name:     "nested",
		Template: "@{stmt}",
		Choices: []synth.Choice{
			{ID: "stmt", Options: []string{"print(@{what});"}},
			{ID: "what", Options: []string{"a", "b"}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Render(1); got != "print(b);" {
		t.Errorf("got %q", got)
	}
}

func TestRenderWithOverrides(t *testing.T) {
	s := demo()
	got := s.RenderWith(map[string]int{"op": 1, "name": 2})
	if !strings.Contains(got, "int z = 0") || !strings.Contains(got, "z *= 2") {
		t.Errorf("got %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown choice must panic")
		}
	}()
	s.RenderWith(map[string]int{"ghost": 1})
}

func TestSampleProperties(t *testing.T) {
	s := demo()
	// Exhaustive when n >= size.
	all := s.Sample(100)
	if int64(len(all)) != s.Size() {
		t.Errorf("exhaustive sample size %d", len(all))
	}
	// Distinct and starting at the reference otherwise.
	part := s.Sample(5)
	if len(part) != 5 || part[0] != 0 {
		t.Errorf("sample = %v", part)
	}
	seen := map[int64]bool{}
	for _, k := range part {
		if k < 0 || k >= s.Size() || seen[k] {
			t.Fatalf("bad sample %v", part)
		}
		seen[k] = true
	}
}

func TestLines(t *testing.T) {
	if synth.Lines("a\n\n b \n\t\nc") != 3 {
		t.Errorf("Lines = %d", synth.Lines("a\n\n b \n\t\nc"))
	}
}

// TestQuickSampleDistinct: for arbitrary small specs, samples are distinct
// and in range.
func TestQuickSampleDistinct(t *testing.T) {
	f := func(opts1, opts2, n uint8) bool {
		a := int(opts1%5) + 1
		b := int(opts2%7) + 1
		spec := &synth.Spec{
			Name:     "q",
			Template: "@{a} @{b}",
			Choices: []synth.Choice{
				{ID: "a", Options: make([]string, a)},
				{ID: "b", Options: make([]string, b)},
			},
		}
		for i := range spec.Choices[0].Options {
			spec.Choices[0].Options[i] = strings.Repeat("x", i+1)
		}
		for i := range spec.Choices[1].Options {
			spec.Choices[1].Options[i] = strings.Repeat("y", i+1)
		}
		sample := spec.Sample(int(n%50) + 1)
		seen := map[int64]bool{}
		for _, k := range sample {
			if k < 0 || k >= spec.Size() || seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeBijective: Decode is the inverse of mixed-radix encoding.
func TestQuickDecodeBijective(t *testing.T) {
	s := demo()
	f := func(k uint16) bool {
		kk := int64(k) % s.Size()
		idx := s.Decode(kk)
		var enc int64
		for i, c := range s.Choices {
			if idx[i] < 0 || idx[i] >= len(c.Options) {
				return false
			}
			enc = enc*int64(len(c.Options)) + int64(idx[i])
		}
		return enc == kk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSampleSeedProperties: seeded sampling is reproducible per seed, keeps
// seed 0 identical to the historical Sample walk, always includes the
// reference, and moves to a different slice of the space for other seeds.
func TestSampleSeedProperties(t *testing.T) {
	s := demo()
	zero := s.SampleSeed(5, 0)
	plain := s.Sample(5)
	for i := range plain {
		if zero[i] != plain[i] {
			t.Fatalf("SampleSeed(n, 0) = %v, want Sample(n) = %v", zero, plain)
		}
	}
	a := s.SampleSeed(5, 42)
	b := s.SampleSeed(5, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 not reproducible: %v vs %v", a, b)
		}
	}
	if a[0] != 0 {
		t.Errorf("seeded sample %v does not start with the reference", a)
	}
	seen := map[int64]bool{}
	for _, k := range a {
		if k < 0 || k >= s.Size() || seen[k] {
			t.Fatalf("bad seeded sample %v", a)
		}
		seen[k] = true
	}
	c := s.SampleSeed(5, 7)
	differs := false
	for i := range a {
		if a[i] != c[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Errorf("seeds 42 and 7 selected identical samples %v", a)
	}
}
