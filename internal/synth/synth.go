// Package synth generates synthetic student submissions following the
// paper's methodology (Section VI-A): error-model rules à la Singh et al.
// define choice points in a reference solution, and the cross product of all
// options is the explicit search space of correct and incorrect submissions.
// The space size |S| is exactly the product of per-choice option counts,
// which is how the S column of Table I is defined.
package synth

import (
	"fmt"
	"strings"
)

// Choice is one choice point. Options[0] is the reference (correct) variant;
// later options encode common student errors or benign stylistic variants.
type Choice struct {
	ID      string
	Options []string
}

// Spec describes one assignment's submission space: a source template whose
// @{id} placeholders are substituted by choice options.
type Spec struct {
	Name     string
	Template string
	Choices  []Choice
}

// Validate checks that every placeholder has a choice and vice versa, and
// that every choice has at least one option. Options may themselves contain
// placeholders (e.g. a print option referencing the chosen variable name);
// usage is therefore checked over the template and every option text.
func (s *Spec) Validate() error {
	seen := map[string]bool{}
	all := s.Template
	for _, c := range s.Choices {
		if len(c.Options) == 0 {
			return fmt.Errorf("synth %s: choice %s has no options", s.Name, c.ID)
		}
		if seen[c.ID] {
			return fmt.Errorf("synth %s: duplicate choice %s", s.Name, c.ID)
		}
		seen[c.ID] = true
		all += strings.Join(c.Options, " ")
	}
	for _, c := range s.Choices {
		if !strings.Contains(all, "@{"+c.ID+"}") {
			return fmt.Errorf("synth %s: choice %s unused", s.Name, c.ID)
		}
	}
	rest := all
	for {
		i := strings.Index(rest, "@{")
		if i < 0 {
			break
		}
		j := strings.Index(rest[i:], "}")
		if j < 0 {
			return fmt.Errorf("synth %s: unterminated placeholder", s.Name)
		}
		id := rest[i+2 : i+j]
		if !seen[id] {
			return fmt.Errorf("synth %s: placeholder @{%s} has no choice", s.Name, id)
		}
		rest = rest[i+j:]
	}
	// Rendering must terminate: verify on the reference rendering.
	if strings.Contains(s.Reference(), "@{") {
		return fmt.Errorf("synth %s: circular placeholder references", s.Name)
	}
	return nil
}

// Size returns |S|, the product of option counts.
func (s *Spec) Size() int64 {
	size := int64(1)
	for _, c := range s.Choices {
		size *= int64(len(c.Options))
	}
	return size
}

// Decode expands a submission index into per-choice option indexes
// (mixed-radix, first choice most significant).
func (s *Spec) Decode(k int64) []int {
	idx := make([]int, len(s.Choices))
	for i := len(s.Choices) - 1; i >= 0; i-- {
		n := int64(len(s.Choices[i].Options))
		idx[i] = int(k % n)
		k /= n
	}
	return idx
}

// RenderIdx renders the submission with explicit per-choice option indexes.
// Substitution runs in passes so that options may reference other choices
// (bounded to tolerate accidental cycles).
func (s *Spec) RenderIdx(idx []int) string {
	src := s.Template
	for pass := 0; pass < 8 && strings.Contains(src, "@{"); pass++ {
		for i, c := range s.Choices {
			src = strings.ReplaceAll(src, "@{"+c.ID+"}", c.Options[idx[i]])
		}
	}
	return src
}

// Render renders submission number k of the space.
func (s *Spec) Render(k int64) string {
	return s.RenderIdx(s.Decode(k))
}

// Reference renders the all-correct submission (option 0 everywhere).
func (s *Spec) Reference() string {
	return s.RenderIdx(make([]int, len(s.Choices)))
}

// IndexWith returns the all-reference index vector with the named choices
// overridden; it panics on unknown choice IDs (a test-authoring error).
func (s *Spec) IndexWith(overrides map[string]int) []int {
	idx := make([]int, len(s.Choices))
	for id, opt := range overrides {
		found := false
		for i, c := range s.Choices {
			if c.ID == id {
				idx[i] = opt
				found = true
				break
			}
		}
		if !found {
			panic("synth: unknown choice " + id)
		}
	}
	return idx
}

// RenderWith renders the reference with the named choice overrides.
func (s *Spec) RenderWith(overrides map[string]int) string {
	return s.RenderIdx(s.IndexWith(overrides))
}

// IsReferenceIndex reports whether index k selects option 0 everywhere.
func (s *Spec) IsReferenceIndex(k int64) bool { return k == 0 }

// Lines returns the number of non-blank lines in a rendered submission —
// the L column of Table I averages this.
func Lines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Sample returns up to n deterministic, distinct submission indexes spread
// over the space: index 0 (the reference) plus a coprime stride walk. When
// n >= Size() it returns every index.
func (s *Spec) Sample(n int) []int64 { return s.SampleSeed(n, 0) }

// SampleSeed is Sample with an explicit sample seed: the same (n, seed) pair
// always selects the same indexes, and different seeds start the coprime
// walk from different offsets, so repeated sampled Table I runs can either
// reproduce each other exactly or cover fresh slices of the space. Seed 0 is
// the historical Sample walk. The reference (index 0) is always included.
func (s *Spec) SampleSeed(n int, seed int64) []int64 {
	size := s.Size()
	if int64(n) >= size {
		out := make([]int64, size)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	stride := coprimeStride(size)
	out := make([]int64, 0, n)
	seen := map[int64]bool{}
	k := int64(0)
	if seed != 0 {
		// Mix the seed so adjacent seeds land far apart, then walk from
		// there; the reference is force-included first.
		k = int64(splitmix64(uint64(seed)) % uint64(size))
		seen[0] = true
		out = append(out, 0)
	}
	for len(out) < n {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
		k = (k + stride) % size
	}
	return out
}

// splitmix64 is the SplitMix64 mixing function — a stdlib-only way to turn
// a small seed into a well-spread starting offset.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// coprimeStride picks a stride near the golden ratio of the space size that
// is coprime with it, so the walk visits every index before repeating.
func coprimeStride(size int64) int64 {
	if size <= 2 {
		return 1
	}
	stride := int64(float64(size) * 0.6180339887)
	if stride < 1 {
		stride = 1
	}
	for gcd(stride, size) != 1 {
		stride++
	}
	return stride
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
