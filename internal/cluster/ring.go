// Package cluster is the horizontal scale-out layer: a coordinator that
// consistent-hash-routes grading requests over a ring of workers, with
// health-checked membership, bounded retry-on-next-replica for idempotent
// grades, sharded batch fan-out, and a ring-aware peer-fill store so workers
// serve cache hits for the keys they own. Routing is by
// (assignment, source hash) — deliberately not the KB version, so a rolling
// knowledge-base update never remaps the ring.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is an immutable consistent-hash ring: each member contributes vnodes
// points on a 64-bit circle, and a key routes to the member owning the first
// point clockwise of the key's hash. Immutability is the concurrency story —
// membership changes build a new Ring and publish it through an
// atomic.Pointer swap, so routing never takes a lock.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int32 // index into members
}

// DefaultVNodes is the virtual-node count per member: high enough that a
// 4-worker ring balances within a few percent, low enough that building a
// ring is microseconds.
const DefaultVNodes = 160

// NewRing builds a ring over members (deduplicated, order-insensitive) with
// the given virtual-node count per member (<= 0 uses DefaultVNodes). An
// empty member list yields a ring whose Lookup returns "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(fmt.Sprintf("%s#%d", m, v)), member: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// hashString is SHA-256 truncated to 64 bits. The similar, short strings
// being hashed (worker URLs with a vnode suffix; assignment + source hash)
// need real avalanche for the ring to balance — FNV-1a measurably skews
// vnode placement here — and at ~100ns per key the cost is noise against
// the HTTP hop the lookup is routing.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// RouteKey is the routing identity of a grade: assignment plus source hash.
// The KB version is excluded on purpose — rolling a knowledge base forward
// must not reshuffle which worker owns a submission.
func RouteKey(assignment, sourceHash string) string {
	return assignment + "\x00" + sourceHash
}

// Lookup returns the member owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	owners := r.LookupN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// LookupN returns up to n distinct members in preference order: the owner
// first, then the successive distinct members clockwise — the replicas a
// coordinator retries an idempotent grade on when the owner is down.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Members returns the ring's distinct members, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size returns the number of distinct members.
func (r *Ring) Size() int { return len(r.members) }

// Shares returns each member's fraction of the 64-bit hash circle — the
// expected share of route keys it owns. With DefaultVNodes the shares sit
// within a few percent of 1/n; a larger spread in statusz means the vnode
// count is too low for the member count.
func (r *Ring) Shares() map[string]float64 {
	if len(r.points) == 0 {
		return map[string]float64{}
	}
	if len(r.members) == 1 {
		return map[string]float64{r.members[0]: 1}
	}
	const circle = float64(1 << 63) * 2 // 2^64 as a float
	arcs := make(map[string]float64, len(r.members))
	// points are sorted; point i owns the arc (points[i-1], points[i]], with
	// the first point owning the wrap-around arc past the last. Unsigned
	// subtraction wraps mod 2^64, which is exactly the circular distance.
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arcs[r.members[p.member]] += float64(p.hash-prev) / circle
		prev = p.hash
	}
	return arcs
}
