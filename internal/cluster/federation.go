package cluster

// Metrics federation and the fleet statusz pane. The coordinator scrapes each
// worker's /statusz and /metrics.json concurrently on demand, keeps the last
// good scrape per worker, and serves:
//
//	GET /v1/cluster/statusz      — the single pane: per-worker health, build,
//	                               SLO windows, store occupancy, ring share,
//	                               scrape staleness, the flight recorder tail.
//	GET /v1/cluster/metrics.json — cluster-wide rollup (counters summed,
//	                               same-bounds histograms merged bucketwise)
//	                               plus a per-worker breakdown bounded by
//	                               maxWorkerSeries.
//	GET /v1/events               — the membership flight recorder.
//
// A worker that fails a scrape degrades, never errors: its last-good data is
// served marked stale with the scrape error attached, and
// semfeed_cluster_scrape_errors_total counts the failure.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"semfeed/internal/obs"
	"semfeed/internal/server"
)

// maxWorkerSeries bounds the per-worker breakdown of the federated metrics
// payload: beyond this many workers the remainder is folded into one "_other"
// rollup, so fleet growth cannot blow up the exposition's cardinality.
const maxWorkerSeries = 64

// maxScrapeBytes caps one worker's statusz/metrics response.
const maxScrapeBytes = 8 << 20

// scrapeReuseWindow is how long a completed scrape satisfies subsequent
// requests: dashboards polling the coordinator at 1Hz must not multiply into
// a per-request fan-out against every worker.
const scrapeReuseWindow = time.Second

// workerScrape is one worker's latest scrape state: the last good payloads
// plus the error that made them stale, if any.
type workerScrape struct {
	At       time.Time    // when the last *successful* scrape completed
	Statusz  obs.Statusz  // last good /statusz
	Snapshot obs.Snapshot // last good /metrics.json
	Good     bool         // ever scraped successfully
	Err      string       // last failure ("" when the latest scrape succeeded)
	ErrAt    time.Time
}

// federator owns the scrape cache. All methods are safe for concurrent use.
type federator struct {
	mu      sync.Mutex
	cache   map[string]*workerScrape
	lastRun time.Time
}

func newFederator() *federator {
	return &federator{cache: map[string]*workerScrape{}}
}

// scrapeAll refreshes every configured worker concurrently, bounded by
// timeout, and returns the post-refresh cache copy. Within scrapeReuseWindow
// of the previous run it serves the cache as-is.
func (c *Coordinator) scrapeAll(ctx context.Context) map[string]workerScrape {
	f := c.fed
	f.mu.Lock()
	if time.Since(f.lastRun) < scrapeReuseWindow {
		out := f.copyLocked()
		f.mu.Unlock()
		return out
	}
	f.lastRun = time.Now()
	f.mu.Unlock()

	workers := c.members.Workers()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			c.scrapeOne(ctx, worker)
		}(w)
	}
	wg.Wait()

	f.mu.Lock()
	defer f.mu.Unlock()
	return f.copyLocked()
}

func (f *federator) copyLocked() map[string]workerScrape {
	out := make(map[string]workerScrape, len(f.cache))
	for k, v := range f.cache {
		out[k] = *v
	}
	return out
}

// scrapeOne fetches one worker's /statusz and /metrics.json and folds the
// result into the cache — last-good retained on failure.
func (c *Coordinator) scrapeOne(ctx context.Context, worker string) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ScrapeTimeout)
	defer cancel()
	var sz obs.Statusz
	var snap obs.Snapshot
	err := c.fetchJSON(ctx, worker+"/statusz", &sz)
	if err == nil {
		err = c.fetchJSON(ctx, worker+"/metrics.json", &snap)
	}

	f := c.fed
	f.mu.Lock()
	defer f.mu.Unlock()
	ws := f.cache[worker]
	if ws == nil {
		ws = &workerScrape{}
		f.cache[worker] = ws
	}
	if err != nil {
		obs.ClusterScrapeErrorsTotal.Inc()
		ws.Err = err.Error()
		ws.ErrAt = time.Now()
		return
	}
	ws.At = time.Now()
	ws.Statusz = sz
	ws.Snapshot = snap
	ws.Good = true
	ws.Err = ""
}

// fetchJSON GETs url and decodes the JSON body into v, bounded by ctx and
// maxScrapeBytes.
func (c *Coordinator) fetchJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxScrapeBytes)).Decode(v)
}

// ---------------------------------------------------------------------------
// Cluster statusz

// WorkerStatus is one worker's row in the fleet pane.
type WorkerStatus struct {
	Worker  string `json:"worker"`
	Healthy bool   `json:"healthy"` // in the routing ring right now
	// Stale means the data below is from an earlier successful scrape — the
	// latest attempt failed (Error says why). Never-scraped workers have
	// Stale true and zero data.
	Stale           bool                    `json:"stale"`
	ScrapeAgeSecs   float64                 `json:"scrape_age_seconds"`
	Error           string                  `json:"error,omitempty"`
	Build           obs.BuildInfo           `json:"build"`
	UptimeSeconds   float64                 `json:"uptime_seconds"`
	SLO             map[string]obs.SLOStats `json:"slo,omitempty"`
	RingShare       float64                 `json:"ring_share"`
	StoreEntries    int64                   `json:"store_entries"`
	StoreBytes      int64                   `json:"store_bytes"`
	GradesInflight  int64                   `json:"grades_inflight"`
	TracesRetained  int                     `json:"traces_retained"`
	HeapBytes       int64                   `json:"heap_bytes"`
	Goroutines      int64                   `json:"goroutines"`
	RequestsServed  int64                   `json:"requests_served"`
	RequestsShedded int64                   `json:"requests_shed"`
}

// ClusterStatusz is the GET /v1/cluster/statusz payload.
type ClusterStatusz struct {
	UptimeSeconds     float64                 `json:"uptime_seconds"` // coordinator's
	Build             obs.BuildInfo           `json:"build"`          // coordinator's
	RingGeneration    uint64                  `json:"ring_generation"`
	WorkersConfigured int                     `json:"workers_configured"`
	WorkersHealthy    int                     `json:"workers_healthy"`
	ScrapeErrorsTotal int64                   `json:"scrape_errors_total"`
	SLO               map[string]obs.SLOStats `json:"slo"`       // coordinator's (client-visible)
	FleetSLO          map[string]obs.SLOStats `json:"fleet_slo"` // merged across workers
	Workers           []WorkerStatus          `json:"workers"`
	EventCounts       map[string]int64        `json:"event_counts"`
	RecentEvents      []MemberEvent           `json:"recent_events"`
}

// handleClusterStatusz assembles the fleet pane: a concurrent scrape of every
// worker folded with membership health, ring shares and the flight recorder.
func (c *Coordinator) handleClusterStatusz(w http.ResponseWriter, req *http.Request) {
	scrapes := c.scrapeAll(req.Context())
	health := c.members.HealthSnapshot()
	shares := c.members.Ring().Shares()
	local := obs.TakeStatusz()

	out := ClusterStatusz{
		UptimeSeconds:     local.UptimeSeconds,
		Build:             local.Build,
		RingGeneration:    c.members.RingGeneration(),
		WorkersConfigured: len(c.members.Workers()),
		WorkersHealthy:    c.members.Ring().Size(),
		ScrapeErrorsTotal: obs.ClusterScrapeErrorsTotal.Value(),
		SLO:               local.SLO,
		EventCounts:       c.members.EventCounts(),
		RecentEvents:      c.members.Events(32),
	}

	var fleet1m, fleet5m []obs.SLOStats
	for _, worker := range c.members.Workers() {
		ws := scrapes[worker]
		row := WorkerStatus{
			Worker:        worker,
			Healthy:       health[worker],
			Stale:         !ws.Good || ws.Err != "",
			Error:         ws.Err,
			RingShare:     shares[worker],
			Build:         ws.Statusz.Build,
			UptimeSeconds: ws.Statusz.UptimeSeconds,
			SLO:           ws.Statusz.SLO,
		}
		if ws.Good {
			row.ScrapeAgeSecs = time.Since(ws.At).Seconds()
			g := ws.Statusz.Gauges
			row.StoreEntries = g["semfeed_store_disk_entries"]
			row.StoreBytes = g["semfeed_store_disk_bytes"]
			row.GradesInflight = g["semfeed_grades_inflight"]
			row.TracesRetained = ws.Statusz.Traces.Stored
			row.HeapBytes = ws.Statusz.Runtime.HeapBytes
			row.Goroutines = ws.Statusz.Runtime.Goroutines
			row.RequestsServed = ws.Snapshot.Counter("semfeed_server_requests_total")
			row.RequestsShedded = ws.Snapshot.Counter("semfeed_server_rejected_total")
			if s, ok := ws.Statusz.SLO["1m"]; ok {
				fleet1m = append(fleet1m, s)
			}
			if s, ok := ws.Statusz.SLO["5m"]; ok {
				fleet5m = append(fleet5m, s)
			}
		}
		out.Workers = append(out.Workers, row)
	}
	out.FleetSLO = map[string]obs.SLOStats{
		"1m": obs.MergeSLOStats(fleet1m),
		"5m": obs.MergeSLOStats(fleet5m),
	}
	server.WriteJSON(w, http.StatusOK, out)
}

// ---------------------------------------------------------------------------
// Federated metrics

// ClusterMetrics is the GET /v1/cluster/metrics.json payload: the cluster-wide
// rollup over worker snapshots plus a per-worker breakdown — the "worker
// label" of the federation, bounded by maxWorkerSeries with the overflow
// folded into "_other".
type ClusterMetrics struct {
	Cluster obs.Snapshot            `json:"cluster"`
	Workers map[string]obs.Snapshot `json:"workers"`
	// Stale lists workers whose snapshot is a retained last-good (latest
	// scrape failed); Missing lists workers never scraped successfully.
	Stale   []string `json:"stale,omitempty"`
	Missing []string `json:"missing,omitempty"`
}

// handleClusterMetrics serves the federated snapshot.
func (c *Coordinator) handleClusterMetrics(w http.ResponseWriter, req *http.Request) {
	scrapes := c.scrapeAll(req.Context())
	workers := c.members.Workers()
	sort.Strings(workers)

	out := ClusterMetrics{Workers: map[string]obs.Snapshot{}}
	var parts []obs.Snapshot
	var overflow []obs.Snapshot
	for _, worker := range workers {
		ws := scrapes[worker]
		if !ws.Good {
			out.Missing = append(out.Missing, worker)
			continue
		}
		if ws.Err != "" {
			out.Stale = append(out.Stale, worker)
		}
		parts = append(parts, ws.Snapshot)
		if len(out.Workers) < maxWorkerSeries {
			out.Workers[worker] = ws.Snapshot
		} else {
			overflow = append(overflow, ws.Snapshot)
		}
	}
	if len(overflow) > 0 {
		out.Workers["_other"] = obs.MergeSnapshots(overflow)
	}
	out.Cluster = obs.MergeSnapshots(parts)
	server.WriteJSON(w, http.StatusOK, out)
}

// ---------------------------------------------------------------------------
// Flight recorder endpoint

// EventsResponse is the GET /v1/events payload.
type EventsResponse struct {
	RingGeneration uint64           `json:"ring_generation"`
	Counts         map[string]int64 `json:"counts"`
	Events         []MemberEvent    `json:"events"` // newest first
}

// handleEvents serves the membership flight recorder (?n= caps the tail;
// default everything retained).
func (c *Coordinator) handleEvents(w http.ResponseWriter, req *http.Request) {
	n := 0
	if s := req.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			server.WriteError(w, http.StatusBadRequest, "n must be a non-negative integer")
			return
		}
		n = v
	}
	server.WriteJSON(w, http.StatusOK, EventsResponse{
		RingGeneration: c.members.RingGeneration(),
		Counts:         c.members.EventCounts(),
		Events:         c.members.Events(n),
	})
}
