package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func workerURLs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func sampleKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Routing keys as the coordinator builds them: assignment + hash.
		out[i] = RouteKey(fmt.Sprintf("assignment%d", i%12), fmt.Sprintf("%064d", i))
	}
	return out
}

// TestRingBalance pins the distribution quality the vnode count buys: over
// 4 workers and 20k keys, every worker's share must be within ±25% of the
// fair share.
func TestRingBalance(t *testing.T) {
	const nWorkers, nKeys = 4, 20000
	ring := NewRing(workerURLs(nWorkers), DefaultVNodes)
	counts := map[string]int{}
	for _, k := range sampleKeys(nKeys) {
		counts[ring.Lookup(k)]++
	}
	if len(counts) != nWorkers {
		t.Fatalf("keys landed on %d workers, want %d", len(counts), nWorkers)
	}
	fair := float64(nKeys) / nWorkers
	for w, n := range counts {
		if ratio := float64(n) / fair; ratio < 0.75 || ratio > 1.25 {
			t.Errorf("worker %s owns %d keys (%.2fx fair share %.0f), outside ±25%%", w, n, ratio, fair)
		}
	}
}

// TestRingRemapBound pins the consistent-hashing contract: membership
// changes move only the necessary keys.
func TestRingRemapBound(t *testing.T) {
	const nWorkers, nKeys = 4, 20000
	workers := workerURLs(nWorkers)
	keys := sampleKeys(nKeys)
	full := NewRing(workers, DefaultVNodes)

	before := make([]string, nKeys)
	for i, k := range keys {
		before[i] = full.Lookup(k)
	}

	// Removing one worker must move exactly that worker's keys: any key it
	// did not own keeps its owner (a structural property of the ring, not a
	// statistical one).
	removed := workers[1]
	smaller := NewRing(append(append([]string{}, workers[:1]...), workers[2:]...), DefaultVNodes)
	movedOnRemove := 0
	for i, k := range keys {
		after := smaller.Lookup(k)
		if before[i] == removed {
			movedOnRemove++
			continue
		}
		if after != before[i] {
			t.Fatalf("key %q moved %s → %s though %s was the one removed", k, before[i], after, removed)
		}
	}
	if movedOnRemove == 0 {
		t.Fatal("removed worker owned zero keys — balance test should have caught this")
	}

	// Adding one worker to N must move at most ~K/(N+1) keys (its fair
	// share, with 35% slack for hash variance).
	bigger := NewRing(append(append([]string{}, workers...), "http://10.0.0.99:8080"), DefaultVNodes)
	movedOnAdd := 0
	for i, k := range keys {
		if bigger.Lookup(k) != before[i] {
			movedOnAdd++
		}
	}
	bound := int(float64(nKeys) / float64(nWorkers+1) * 1.35)
	if movedOnAdd > bound {
		t.Errorf("adding 1 of %d workers moved %d/%d keys, want <= %d (~K/N)", nWorkers+1, movedOnAdd, nKeys, bound)
	}
	if movedOnAdd == 0 {
		t.Error("adding a worker moved zero keys")
	}
}

func TestRingLookupN(t *testing.T) {
	ring := NewRing(workerURLs(3), 64)
	key := RouteKey("assignment1", "abc")
	replicas := ring.LookupN(key, 5) // more than members: capped, distinct
	if len(replicas) != 3 {
		t.Fatalf("LookupN returned %d members, want 3", len(replicas))
	}
	seen := map[string]bool{}
	for _, r := range replicas {
		if seen[r] {
			t.Fatalf("duplicate replica %s", r)
		}
		seen[r] = true
	}
	if replicas[0] != ring.Lookup(key) {
		t.Fatal("LookupN[0] disagrees with Lookup")
	}
	if got := NewRing(nil, 64).Lookup(key); got != "" {
		t.Fatalf("empty ring Lookup = %q, want \"\"", got)
	}
}

// TestMembershipConcurrentSwapDuringRouting hammers Ring() lookups while
// membership flips workers in and out; run with -race this pins the
// atomic-snapshot publication.
func TestMembershipConcurrentSwapDuringRouting(t *testing.T) {
	workers := workerURLs(4)
	m := NewMembership(workers, 64, nil)
	keys := sampleKeys(512)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ring := m.Ring()
				for _, k := range keys {
					owner := ring.Lookup(k)
					if ring.Size() > 0 && owner == "" {
						t.Error("non-empty ring returned empty owner")
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			m.ReportFailure(workers[i%len(workers)])
			m.mu.Lock()
			m.fails[workers[i%len(workers)]] = 0 // what a probe success does
			m.mu.Unlock()
			m.rebuild()
		}
		stop.Store(true)
	}()
	wg.Wait()

	if got := m.Ring().Size(); got != 4 {
		t.Fatalf("after recovery ring has %d workers, want 4", got)
	}
}

func TestMembershipReportFailureAndRecovery(t *testing.T) {
	workers := workerURLs(3)
	m := NewMembership(workers, 64, nil)
	if m.Ring().Size() != 3 {
		t.Fatalf("initial ring size %d, want 3", m.Ring().Size())
	}
	m.ReportFailure(workers[0])
	if m.Ring().Size() != 2 {
		t.Fatalf("ring size after failure %d, want 2", m.Ring().Size())
	}
	for _, w := range m.Ring().Members() {
		if w == workers[0] {
			t.Fatal("failed worker still in ring")
		}
	}
	// A probe success restores it.
	m.mu.Lock()
	m.fails[workers[0]] = 0
	m.mu.Unlock()
	m.rebuild()
	if m.Ring().Size() != 3 {
		t.Fatalf("ring size after recovery %d, want 3", m.Ring().Size())
	}
}
