package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"semfeed/internal/obs"
)

// fakeTraceWorker is a worker stand-in for the stitching tests: it answers
// grades with a canned 200, remembers the traceparent each forwarded request
// carried, and serves a fabricated trace fragment for that request ID — the
// two-process shape the assembler must join without two real processes.
type fakeTraceWorker struct {
	mu  sync.Mutex
	tps map[string]string // request ID -> traceparent it arrived with
	srv *httptest.Server
}

func newFakeTraceWorker() *fakeTraceWorker {
	f := &fakeTraceWorker{tps: map[string]string{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/grade", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.tps[r.Header.Get("X-Request-ID")] = r.Header.Get("traceparent")
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"assignment":"assignment1","score":1}`)
	})
	mux.HandleFunc("GET /v1/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		f.mu.Lock()
		tp, ok := f.tps[id]
		f.mu.Unlock()
		if !ok {
			http.Error(w, "no trace", http.StatusNotFound)
			return
		}
		now := time.Now()
		td := obs.TraceData{
			ID: id, Name: "grade/assignment1", TraceParent: tp,
			Start: now, Duration: 5 * time.Millisecond,
			Spans: []obs.SpanData{
				{ID: 0, Parent: -1, Name: "grade/assignment1", Start: now, Duration: 5 * time.Millisecond},
				{ID: 1, Parent: 0, Name: "parse", Start: now, Duration: time.Millisecond},
				{ID: 2, Parent: 0, Name: "match_sweep", Start: now.Add(time.Millisecond), Duration: 2 * time.Millisecond},
			},
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&td)
	})
	f.srv = httptest.NewServer(mux)
	return f
}

// assembled mirrors the AssembledTrace wire shape for decoding.
type assembled struct {
	obs.TraceData
	Sources []obs.TraceSource `json:"sources"`
}

// TestClusterTraceAssemblyStitchesTwoProcesses is the tentpole end-to-end:
// one grade through the coordinator, then GET /v1/trace/{id} returns ONE tree
// holding the coordinator's proxy span with the worker's phase spans
// re-parented under it, plus the provenance of both processes.
func TestClusterTraceAssemblyStitchesTwoProcesses(t *testing.T) {
	obs.Enable()
	obs.EnableTracing()
	defer obs.DisableTracing()

	fw := newFakeTraceWorker()
	defer fw.srv.Close()
	_, base := spawnCoordinator(t, fw.srv.URL)

	resp, body := gradeVia(t, base, "class C { }")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grade via fake worker: %d: %s", resp.StatusCode, body)
	}
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("no request ID on the proxied response")
	}

	tresp, err := http.Get(base + "/v1/trace/" + rid)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(tresp.Body)
		t.Fatalf("assembled trace fetch: %d: %s", tresp.StatusCode, raw)
	}
	var at assembled
	if err := json.NewDecoder(tresp.Body).Decode(&at); err != nil {
		t.Fatal(err)
	}

	if len(at.Sources) != 2 {
		t.Fatalf("sources = %+v, want coordinator + worker", at.Sources)
	}
	if at.Sources[0].Process != "coordinator" || at.Sources[0].Spans == 0 {
		t.Fatalf("sources[0] = %+v, want a contributing coordinator", at.Sources[0])
	}
	if at.Sources[1].Process != fw.srv.URL || at.Sources[1].Spans != 3 {
		t.Fatalf("sources[1] = %+v, want 3 worker spans", at.Sources[1])
	}

	byName := map[string]obs.SpanData{}
	for _, s := range at.Spans {
		byName[s.Name] = s
	}
	proxy, ok := byName["proxy/assignment1"]
	if !ok {
		t.Fatalf("no proxy span in the assembled tree: %+v", at.Spans)
	}
	grade, ok := byName["grade/assignment1"]
	if !ok {
		t.Fatal("no worker grade span in the assembled tree")
	}
	if grade.Parent != proxy.ID {
		t.Fatalf("grade root parent = %d, want the proxy span %d (stitch did not re-parent)", grade.Parent, proxy.ID)
	}
	if byName["parse"].Parent != grade.ID || byName["match_sweep"].Parent != grade.ID {
		t.Fatal("worker phase spans lost their internal structure")
	}
	var hasProcess bool
	for _, a := range grade.Attrs {
		if a.Key == "process" && a.Value == fw.srv.URL {
			hasProcess = true
		}
	}
	if !hasProcess {
		t.Fatalf("grafted root not annotated with its process: %+v", grade.Attrs)
	}

	// The text rendering nests the worker subtree under the proxy span.
	txt, err := http.Get(base + "/v1/trace/" + rid + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer txt.Body.Close()
	raw, _ := io.ReadAll(txt.Body)
	text := string(raw)
	if !strings.Contains(text, "assembled trace") || !strings.Contains(text, "source coordinator") {
		t.Fatalf("text rendering lacks the provenance block:\n%s", text)
	}
	if p, g := strings.Index(text, "proxy/assignment1"), strings.Index(text, "grade/assignment1"); p < 0 || g < p {
		t.Fatalf("text tree does not nest grade under proxy:\n%s", text)
	}
}

// TestClusterTrace404WhenNobodyRetains pins the miss path: the fan-out asks
// the coordinator's store and every worker, and answers 404 when none of
// them retained the ID.
func TestClusterTrace404WhenNobodyRetains(t *testing.T) {
	fw := newFakeTraceWorker()
	defer fw.srv.Close()
	_, base := spawnCoordinator(t, fw.srv.URL)

	resp, err := http.Get(base + "/v1/trace/no-such-request-id")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s, want 404", resp.StatusCode, raw)
	}
}

// TestClusterStatuszAggregatesAndDegrades pins the fleet pane: two live
// workers aggregate; killing one degrades its row to stale with an error
// while the pane keeps serving 200.
func TestClusterStatuszAggregatesAndDegrades(t *testing.T) {
	obs.Enable()
	w1 := spawnWorker(t)
	w2 := spawnWorker(t)
	defer w1.stop()
	c, base := spawnCoordinator(t, w1.base, w2.base)

	fetch := func() ClusterStatusz {
		t.Helper()
		resp, err := http.Get(base + "/v1/cluster/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("cluster statusz: %d: %s", resp.StatusCode, raw)
		}
		var cs ClusterStatusz
		if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
			t.Fatal(err)
		}
		return cs
	}

	cs := fetch()
	if cs.WorkersConfigured != 2 || len(cs.Workers) != 2 {
		t.Fatalf("configured=%d rows=%d, want 2/2", cs.WorkersConfigured, len(cs.Workers))
	}
	for _, row := range cs.Workers {
		if row.Stale || row.Error != "" {
			t.Fatalf("live worker row marked stale: %+v", row)
		}
		if row.Build.GoVersion == "" || row.UptimeSeconds <= 0 {
			t.Fatalf("worker row missing build/uptime: %+v", row)
		}
		if row.RingShare <= 0.2 || row.RingShare >= 0.8 {
			t.Fatalf("ring share %g badly unbalanced for 2 workers", row.RingShare)
		}
	}
	if cs.RingGeneration == 0 {
		t.Fatal("ring generation missing from the pane")
	}
	if _, ok := cs.FleetSLO["1m"]; !ok {
		t.Fatal("no fleet SLO rollup")
	}

	// Kill w2 and force a fresh scrape: its row degrades, the pane does not.
	w2.kill()
	c.fed.mu.Lock()
	c.fed.lastRun = time.Time{}
	c.fed.mu.Unlock()
	cs = fetch()
	var dead *WorkerStatus
	for i := range cs.Workers {
		if cs.Workers[i].Worker == w2.base {
			dead = &cs.Workers[i]
		}
	}
	if dead == nil {
		t.Fatal("killed worker's row disappeared from the pane")
	}
	if !dead.Stale || dead.Error == "" {
		t.Fatalf("killed worker's row = %+v, want stale with the scrape error", dead)
	}
	// Last-good data survives the failed scrape.
	if dead.Build.GoVersion == "" {
		t.Fatalf("killed worker lost its last-good scrape data: %+v", dead)
	}
}

// TestClusterMetricsFederation pins the rollup arithmetic: the cluster
// counter equals the sum over the per-worker breakdown.
func TestClusterMetricsFederation(t *testing.T) {
	obs.Enable()
	w1 := spawnWorker(t)
	w2 := spawnWorker(t)
	defer w1.stop()
	defer w2.stop()
	_, base := spawnCoordinator(t, w1.base, w2.base)

	for _, src := range variants(t, 4) {
		if resp, body := gradeVia(t, base, src); resp.StatusCode != http.StatusOK {
			t.Fatalf("grade: %d: %s", resp.StatusCode, body)
		}
	}

	resp, err := http.Get(base + "/v1/cluster/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cm ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&cm); err != nil {
		t.Fatal(err)
	}
	if len(cm.Workers) != 2 {
		t.Fatalf("per-worker breakdown has %d entries, want 2", len(cm.Workers))
	}
	var sum int64
	for _, snap := range cm.Workers {
		sum += snap.Counter("semfeed_server_requests_total")
	}
	if sum < 4 {
		t.Fatalf("workers served %d requests total, want >= 4", sum)
	}
	if got := cm.Cluster.Counter("semfeed_server_requests_total"); got != sum {
		t.Fatalf("cluster rollup = %d, want the per-worker sum %d", got, sum)
	}
	if len(cm.Stale) != 0 || len(cm.Missing) != 0 {
		t.Fatalf("live fleet reported stale=%v missing=%v", cm.Stale, cm.Missing)
	}
}

// TestClusterEventsEndpoint pins the flight-recorder surface: a transport
// failure shows up as worker_down + ring_rebuild at GET /v1/events.
func TestClusterEventsEndpoint(t *testing.T) {
	w1 := spawnWorker(t)
	defer w1.stop()
	c, base := spawnCoordinator(t, w1.base, "http://127.0.0.1:1")

	c.Membership().ReportFailure("http://127.0.0.1:1")

	resp, err := http.Get(base + "/v1/events?n=16")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er EventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.RingGeneration == 0 || len(er.Events) == 0 {
		t.Fatalf("events payload empty: %+v", er)
	}
	var sawDown bool
	for _, e := range er.Events {
		if e.Kind == EventWorkerDown && e.Worker == "http://127.0.0.1:1" {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatalf("no worker_down for the failed worker in %+v", er.Events)
	}
	if er.Counts[EventRingRebuild] == 0 {
		t.Fatalf("counts = %+v, want ring_rebuild > 0", er.Counts)
	}

	if bad, err := http.Get(base + "/v1/events?n=-3"); err == nil {
		bad.Body.Close()
		if bad.StatusCode != http.StatusBadRequest {
			t.Fatalf("n=-3 answered %d, want 400", bad.StatusCode)
		}
	}
}
