package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"semfeed/internal/obs"
	"semfeed/internal/server"
	"semfeed/internal/store"
)

// DefaultReplicas is how many additional ring members a failed idempotent
// request is retried on when Config.Replicas is negative ("use default").
const DefaultReplicas = 2

// Config tunes the coordinator. The zero value (plus Workers) applies the
// defaults noted on each field — except Replicas, where zero is a meaningful
// setting (retries disabled) and negative selects the default.
type Config struct {
	// Workers are the worker base URLs (http://host:port); required.
	Workers []string
	// VNodes is the virtual-node count per worker (default DefaultVNodes).
	VNodes int
	// ProbeInterval is the /readyz health-probe period (default 2s).
	ProbeInterval time.Duration
	// ProxyTimeout bounds one proxied /v1/grade attempt (default 15s; keep
	// it above the workers' grading deadline so the worker's 504 arrives
	// instead of a coordinator-side cut).
	ProxyTimeout time.Duration
	// ShardTimeout bounds one per-worker batch shard (default 60s).
	ShardTimeout time.Duration
	// ScrapeTimeout bounds one worker's statusz/metrics scrape and one
	// worker's trace fetch during cross-process assembly (default 3s).
	ScrapeTimeout time.Duration
	// Replicas is how many additional ring members a failed idempotent
	// request is retried on. Zero disables replica retries; negative means
	// "use the default" (DefaultReplicas).
	Replicas int
	// MaxBodyBytes caps request bodies (default 16 MiB — batches pass
	// through whole).
	MaxBodyBytes int64
	// Client is the proxy HTTP client; nil builds a pooled default.
	Client *http.Client
	// Logger receives structured event logs. Nil falls back to the
	// process-wide obs.Logger().
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 15 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 60 * time.Second
	}
	if c.ScrapeTimeout <= 0 {
		c.ScrapeTimeout = 3 * time.Second
	}
	if c.Replicas < 0 {
		c.Replicas = DefaultReplicas
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
}

// Coordinator is the routing tier: it owns no knowledge base and grades
// nothing itself. /v1/grade is consistent-hash-routed to the worker owning
// (assignment, source hash) — so each worker's result store concentrates on
// its own shard of the submission space — and /v1/batch is sharded the same
// way and fanned out with per-worker deadlines. Transport-level failures
// reroute to the next replica on the ring (grades are idempotent) and mark
// the worker down without waiting for a probe cycle.
type Coordinator struct {
	cfg      Config
	members  *Membership
	fed      *federator
	mux      *http.ServeMux
	handler  http.Handler
	draining atomic.Bool
	httpSrv  *http.Server
	addr     atomic.Pointer[string]
}

// New builds a coordinator over cfg.Workers.
func New(cfg Config) *Coordinator {
	cfg.defaults()
	if len(cfg.Workers) == 0 {
		panic("cluster: Config.Workers is required")
	}
	c := &Coordinator{
		cfg:     cfg,
		members: NewMembership(cfg.Workers, cfg.VNodes, cfg.Client),
		fed:     newFederator(),
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/v1/grade", c.handleGrade)
	c.mux.HandleFunc("/v1/batch", c.handleBatch)
	c.mux.HandleFunc("/v1/assignments", c.handleAssignments)
	c.mux.HandleFunc("GET /v1/trace/{id}", c.handleTrace)
	c.mux.HandleFunc("GET /v1/cluster/statusz", c.handleClusterStatusz)
	c.mux.HandleFunc("GET /v1/cluster/metrics.json", c.handleClusterMetrics)
	c.mux.HandleFunc("GET /v1/events", c.handleEvents)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/readyz", c.handleReadyz)
	c.mux.Handle("/metrics", obs.Handler())
	c.mux.Handle("/metrics.json", obs.JSONHandler())
	c.mux.Handle("/statusz", obs.StatuszHandler())
	c.mux.Handle("/debug/traces", obs.TraceHandler())
	// The coordinator reuses the server's middleware stack wholesale: same
	// request IDs, same SLO windows, same exemplar-carrying histogram — one
	// trace spans both processes because the middleware forwards context.
	c.handler = server.Observability(c.mux)
	return c
}

func (c *Coordinator) log() *slog.Logger {
	if c.cfg.Logger != nil {
		return c.cfg.Logger
	}
	return obs.Logger()
}

// Membership exposes the health-tracked worker set (tests and /readyz).
func (c *Coordinator) Membership() *Membership { return c.members }

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// Start begins health probing and serves on addr (":0" picks a free port).
// The returned channel delivers the listener's terminal error; a graceful
// Shutdown delivers nil.
func (c *Coordinator) Start(addr string) (<-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	actual := ln.Addr().String()
	c.addr.Store(&actual)
	c.members.Start(c.cfg.ProbeInterval)
	c.httpSrv = &http.Server{Handler: c.handler}
	errc := make(chan error, 1)
	go func() {
		err := c.httpSrv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		errc <- err
	}()
	return errc, nil
}

// Addr returns the bound listen address after Start.
func (c *Coordinator) Addr() string {
	if p := c.addr.Load(); p != nil {
		return *p
	}
	return ""
}

// Shutdown drains the coordinator: readiness flips, probing stops, and
// in-flight proxied requests run to completion or until ctx fires.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	c.members.Stop()
	if c.httpSrv == nil {
		return nil
	}
	t0 := time.Now()
	c.log().Info("drain_start")
	err := c.httpSrv.Shutdown(ctx)
	c.log().Info("drain_complete",
		"duration_ms", float64(time.Since(t0).Microseconds())/1000,
		"clean", err == nil)
	return err
}

// ---------------------------------------------------------------------------
// Handlers

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports the coordinator's ability to route: draining or a
// ring with zero healthy workers is 503, because accepting traffic that can
// only fail is worse than telling the load balancer to go elsewhere.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case c.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case c.members.Ring().Size() == 0:
		http.Error(w, "no healthy workers", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// retryable reports whether a proxied response status means "try the next
// replica": only statuses that imply the worker cannot serve at all. A 429
// is deliberately not retryable — shedding is backpressure, and bouncing the
// same request onto another loaded worker amplifies an overload; it is
// forwarded verbatim (with the worker's own Retry-After) instead. A 504 is
// the worker's grading deadline and would cost a full extra timeout to
// retry.
func retryable(status int) bool {
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable
}

// handleGrade proxies one grade to the worker owning its routing key,
// retrying transport failures on up to Replicas successive ring members.
func (c *Coordinator) handleGrade(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		server.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	// Only the routing fields are decoded here; the worker owns validation,
	// so unknown fields or a bad assignment produce the same response a
	// standalone server would give.
	var greq server.GradeRequest
	if err := json.Unmarshal(body, &greq); err != nil {
		server.WriteError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	server.SetRouteAssignment(req.Context(), greq.Assignment)
	c.proxyWithReroute(w, req, "/v1/grade", body, RouteKey(greq.Assignment, store.SourceHash(greq.Source)), greq.Assignment)
}

// proxyWithReroute forwards body to the owner of routeKey, walking the
// replica list on transport-level failure. It writes exactly one response.
func (c *Coordinator) proxyWithReroute(w http.ResponseWriter, req *http.Request, path string, body []byte, routeKey, assignment string) {
	rid := obs.RequestIDFrom(req.Context())
	tp := obs.OutboundTraceparent(req.Context())
	sp := obs.StartTrace("proxy/" + assignment)
	sp.SetTraceID(rid)
	if tc, ok := obs.TraceContextFrom(req.Context()); ok {
		sp.SetRemoteParent(tc.Traceparent())
	}
	// Stamp the exact forwarded traceparent on the proxy span: the worker
	// records the same header verbatim as its trace's parent, and that string
	// equality is the join key cross-process assembly stitches on.
	sp.SetAttr(obs.SentTraceparentKey, tp)
	defer sp.End()

	candidates := c.members.Ring().LookupN(routeKey, 1+c.cfg.Replicas)
	if len(candidates) == 0 {
		sp.SetOutcome("no_workers")
		server.WriteError(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	for attempt, worker := range candidates {
		t0 := time.Now()
		resp, err := c.forward(req.Context(), worker, path, body, rid, tp)
		if err == nil && !retryable(resp.StatusCode) {
			sp.SetAttr("worker", worker)
			sp.SetAttrInt("attempts", int64(attempt+1))
			status := c.copyResponse(w, resp)
			obs.ClusterProxySeconds.Observe(time.Since(t0).Seconds(), worker, server.StatusClass(status))
			switch {
			case status == http.StatusTooManyRequests:
				sp.SetOutcome("shed")
			case status >= 500:
				sp.SetOutcome("error")
			}
			if attempt > 0 {
				c.log().Info("rerouted",
					"request_id", rid,
					"assignment", assignment,
					"worker", worker,
					"attempts", attempt+1)
			}
			return
		}
		// The worker is unreachable or told us it cannot serve: drop it
		// from the ring now (fail-open) and try the next replica.
		status := 0
		if err == nil {
			status = resp.StatusCode
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		obs.ClusterProxySeconds.Observe(time.Since(t0).Seconds(), worker, "5xx")
		c.members.ReportFailure(worker)
		obs.ClusterReroutesTotal.Inc()
		c.log().Warn("worker_failed",
			"request_id", rid,
			"worker", worker,
			"status", status,
			"error", fmt.Sprint(err))
	}
	sp.SetOutcome("proxy_failed")
	server.WriteError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("all %d replicas failed", len(candidates)))
}

// forward issues one proxied POST carrying the request ID and an onward
// traceparent, bounded by ProxyTimeout.
func (c *Coordinator) forward(ctx context.Context, worker, path string, body []byte, rid, traceparent string) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProxyTimeout)
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+path, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set("X-Request-ID", rid)
	if traceparent != "" {
		// Omit the header entirely rather than sending a blank one — a blank
		// traceparent makes the worker parse and reject it instead of minting
		// its own trace identity.
		preq.Header.Set("traceparent", traceparent)
	}
	resp, err := c.cfg.Client.Do(preq)
	if err != nil {
		cancel()
		return nil, err
	}
	// Tie the timeout to the body: the caller streams it out, then closes.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// copyResponse relays a worker response: status, content type, and — the
// backpressure contract — the worker's own Retry-After on a 429, so the
// client sees the shedding worker's hint, not a coordinator-minted one.
func (c *Coordinator) copyResponse(w http.ResponseWriter, resp *http.Response) int {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return resp.StatusCode
}

// ---------------------------------------------------------------------------
// Batch fan-out

// shardOutcome is one worker sub-batch's result.
type shardOutcome struct {
	worker  string
	indices []int // original submission indices, in shard order
	resp    *server.BatchResponse
	err     error // transport-level failure: indices go back in the pending pool
	status  int   // HTTP status when err == nil and status != 200
	body    string
}

// handleBatch decodes the batch, shards it across the ring by each
// submission's routing key, fans the shards out concurrently with per-worker
// deadlines, and merges the results back in submission order. A worker that
// fails in transport forfeits its shard to the next ring snapshot (one
// reroute round); a worker that answers an error status fails only its own
// items.
func (c *Coordinator) handleBatch(w http.ResponseWriter, req *http.Request) {
	t0 := time.Now()
	if req.Method != http.MethodPost {
		server.WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var breq server.BatchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		server.WriteError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	server.SetRouteAssignment(req.Context(), breq.Assignment)
	if len(breq.Submissions) == 0 {
		server.WriteError(w, http.StatusBadRequest, "no submissions")
		return
	}

	rid := obs.RequestIDFrom(req.Context())
	sp := obs.StartTrace("proxy_batch/" + breq.Assignment)
	sp.SetTraceID(rid)
	if tc, ok := obs.TraceContextFrom(req.Context()); ok {
		sp.SetRemoteParent(tc.Traceparent())
	}
	defer sp.End()

	resp := server.BatchResponse{Assignment: breq.Assignment}
	resp.Results = make([]server.BatchItem, len(breq.Submissions))
	routeKeys := make([]string, len(breq.Submissions))
	for i, sub := range breq.Submissions {
		resp.Results[i].ID = sub.ID
		routeKeys[i] = RouteKey(breq.Assignment, store.SourceHash(sub.Source))
	}

	pending := make([]int, len(breq.Submissions))
	for i := range pending {
		pending[i] = i
	}
	workersUsed := 0
	for round := 0; round <= c.cfg.Replicas && len(pending) > 0; round++ {
		ring := c.members.Ring()
		if ring.Size() == 0 {
			break
		}
		shards := map[string][]int{}
		for _, i := range pending {
			shards[ring.Lookup(routeKeys[i])] = append(shards[ring.Lookup(routeKeys[i])], i)
		}
		if round == 0 {
			workersUsed = len(shards)
		}
		outcomes := make([]shardOutcome, 0, len(shards))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for worker, indices := range shards {
			wg.Add(1)
			go func(worker string, indices []int) {
				defer wg.Done()
				// Each shard gets its own outbound traceparent (fresh span ID,
				// same trace ID) stamped on its own child span, so every
				// worker's batch fragment stitches under the shard span that
				// actually sent it work.
				tp := obs.OutboundTraceparent(req.Context())
				ssp := sp.Child("shard/" + worker)
				ssp.SetAttr("worker", worker)
				ssp.SetAttrInt("items", int64(len(indices)))
				ssp.SetAttr(obs.SentTraceparentKey, tp)
				out := c.runShard(req.Context(), worker, &breq, indices, rid, tp)
				if out.err != nil {
					ssp.SetAttr("error", out.err.Error())
				}
				ssp.End()
				mu.Lock()
				outcomes = append(outcomes, out)
				mu.Unlock()
			}(worker, indices)
		}
		wg.Wait()

		pending = pending[:0]
		for _, out := range outcomes {
			switch {
			case out.err != nil:
				// Transport failure: reroute this shard's items next round.
				c.members.ReportFailure(out.worker)
				obs.ClusterReroutesTotal.Inc()
				c.log().Warn("shard_failed",
					"request_id", rid,
					"worker", out.worker,
					"items", len(out.indices),
					"error", out.err.Error())
				pending = append(pending, out.indices...)
			case out.resp == nil:
				// HTTP-level error (shed, bad request, deadline): the worker
				// answered, so its verdict stands for its items.
				for _, i := range out.indices {
					resp.Results[i].Error = fmt.Sprintf("worker %s: HTTP %d: %s", out.worker, out.status, out.body)
					resp.Failed++
				}
			default:
				if resp.KBVersion == "" {
					resp.KBVersion = out.resp.KBVersion
				}
				for j, i := range out.indices {
					if j < len(out.resp.Results) {
						resp.Results[i] = out.resp.Results[j]
						resp.Results[i].ID = breq.Submissions[i].ID
					} else {
						// A short response must not leave items unaccounted:
						// every submission lands in Graded or Failed.
						resp.Results[i].Error = fmt.Sprintf(
							"worker %s returned short response (%d results for %d submissions)",
							out.worker, len(out.resp.Results), len(out.indices))
						resp.Failed++
					}
				}
				resp.Graded += out.resp.Graded
				resp.Failed += out.resp.Failed
				resp.Cancelled += out.resp.Cancelled
				resp.CacheHits += out.resp.CacheHits
			}
		}
	}
	for _, i := range pending {
		resp.Results[i].Error = "no healthy worker"
		resp.Failed++
	}
	resp.WallMS = float64(time.Since(t0).Microseconds()) / 1000
	sp.SetAttrInt("shards", int64(workersUsed))
	sp.SetAttrInt("submissions", int64(len(breq.Submissions)))
	if len(breq.Submissions) > 0 && resp.Graded == 0 && c.members.Ring().Size() == 0 {
		server.WriteError(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	server.WriteJSON(w, http.StatusOK, resp)
	c.log().Info("batch_fanout",
		"request_id", rid,
		"assignment", breq.Assignment,
		"submissions", len(breq.Submissions),
		"shards", workersUsed,
		"graded", resp.Graded,
		"failed", resp.Failed,
		"elapsed_ms", resp.WallMS)
}

// runShard sends one worker its sub-batch and decodes the response.
func (c *Coordinator) runShard(ctx context.Context, worker string, breq *server.BatchRequest, indices []int, rid, tp string) shardOutcome {
	obs.ClusterShardsTotal.Inc()
	out := shardOutcome{worker: worker, indices: indices}
	shard := server.BatchRequest{Assignment: breq.Assignment, Workers: breq.Workers}
	shard.Submissions = make([]struct {
		ID     string `json:"id,omitempty"`
		Source string `json:"source"`
	}, len(indices))
	for j, i := range indices {
		shard.Submissions[j] = breq.Submissions[i]
	}
	body, err := json.Marshal(shard)
	if err != nil {
		out.err = err
		return out
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set("X-Request-ID", rid)
	if tp != "" {
		preq.Header.Set("traceparent", tp)
	}
	resp, err := c.cfg.Client.Do(preq)
	if err != nil {
		out.err = err
		return out
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		out.err = err
		return out
	}
	if retryable(resp.StatusCode) {
		out.err = fmt.Errorf("worker answered %d", resp.StatusCode)
		return out
	}
	if resp.StatusCode != http.StatusOK {
		out.status = resp.StatusCode
		out.body = strings1K(raw)
		return out
	}
	var bresp server.BatchResponse
	if err := json.Unmarshal(raw, &bresp); err != nil {
		out.err = fmt.Errorf("decode shard response: %w", err)
		return out
	}
	out.resp = &bresp
	return out
}

// strings1K truncates an error body for embedding in per-item errors.
func strings1K(b []byte) string {
	s := string(b)
	if len(s) > 1024 {
		s = s[:1024] + "…"
	}
	return strings2line(s)
}

func strings2line(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' || s[i] == '\r' {
			out = append(out, ' ')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// ---------------------------------------------------------------------------
// Pass-through endpoints

// handleAssignments proxies the listing to the first healthy worker — every
// worker serves the same KB, so any one of them is authoritative enough.
func (c *Coordinator) handleAssignments(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		server.WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	for _, worker := range c.members.Healthy() {
		ctx, cancel := context.WithTimeout(req.Context(), c.cfg.ProxyTimeout)
		preq, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/assignments", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := c.cfg.Client.Do(preq)
		if err != nil {
			cancel()
			c.members.ReportFailure(worker)
			continue
		}
		c.copyResponse(w, resp)
		cancel()
		return
	}
	server.WriteError(w, http.StatusServiceUnavailable, "no healthy workers")
}

// handleTrace assembles the cross-process trace for one request ID: the
// coordinator's proxy fragment plus every worker's retained fragment for the
// same ID, fetched concurrently under one deadline and stitched into a single
// tree (obs.Stitch) — worker spans re-parented under the proxy span that
// forwarded them, each subtree annotated with its process and clock offset.
// One request ID, one curl, the whole cluster's view of that grade.
func (c *Coordinator) handleTrace(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	at := c.assembleTrace(req.Context(), id)
	if at == nil {
		server.WriteError(w, http.StatusNotFound,
			fmt.Sprintf("no retained trace %q on the coordinator or any worker", id))
		return
	}
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, at.Text())
		return
	}
	server.WriteJSON(w, http.StatusOK, at)
}

// assembleTrace fans out the by-ID trace fetch to every configured worker —
// not just the healthy ones; a worker that served the request and was marked
// down afterwards may still hold the fragment — and stitches whatever came
// back. Returns nil when no process retained the ID.
func (c *Coordinator) assembleTrace(ctx context.Context, id string) *obs.AssembledTrace {
	workers := c.members.Workers()
	// The coordinator's own fragment first: Stitch prefers the first non-nil
	// trace as the base, and the proxy span is the tree's natural root.
	parts := make([]obs.RemoteTrace, 1+len(workers))
	parts[0] = obs.RemoteTrace{Source: "coordinator", Trace: obs.TraceByID(id)}

	ctx, cancel := context.WithTimeout(ctx, c.cfg.ScrapeTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i, worker := range workers {
		wg.Add(1)
		go func(slot int, worker string) {
			defer wg.Done()
			parts[slot] = c.fetchTrace(ctx, worker, id)
		}(1+i, worker)
	}
	wg.Wait()
	return obs.Stitch(parts)
}

// fetchTrace asks one worker for its fragment of trace id. A 404 is a normal
// non-contribution (the worker never saw the request, or evicted the trace);
// transport failures and other statuses are recorded in the provenance block.
func (c *Coordinator) fetchTrace(ctx context.Context, worker, id string) obs.RemoteTrace {
	out := obs.RemoteTrace{Source: worker}
	preq, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/trace/"+id, nil)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	resp, err := c.cfg.Client.Do(preq)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return out
	case resp.StatusCode != http.StatusOK:
		out.Err = fmt.Sprintf("HTTP %d", resp.StatusCode)
		return out
	}
	var td obs.TraceData
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxScrapeBytes)).Decode(&td); err != nil {
		out.Err = "decode trace: " + err.Error()
		return out
	}
	out.Trace = &td
	return out
}
