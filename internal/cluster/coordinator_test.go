package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"semfeed/internal/assignments"
	"semfeed/internal/obs"
	"semfeed/internal/server"
	"semfeed/internal/store"
)

// testWorker is an in-process grading server plus the handles a failover
// test needs: stop drains it gracefully, kill tears down every connection
// the way a crashed process would.
type testWorker struct {
	base string
	srv  *server.Server
	errc <-chan error
}

func (w *testWorker) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = w.srv.Shutdown(ctx)
	<-w.errc
}

func (w *testWorker) kill() {
	_ = w.srv.Close()
	<-w.errc
}

// spawnWorker starts a real grading server over the builtin assignment1.
func spawnWorker(t *testing.T) *testWorker {
	t.Helper()
	a := assignments.Get("assignment1")
	if a == nil {
		t.Fatal("builtin assignment1 missing")
	}
	reg := server.NewRegistry("", nil)
	reg.AddBuiltin(a.ID, a.Spec)
	if err := reg.Load(); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Registry: reg})
	errc, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return &testWorker{base: "http://" + srv.Addr(), srv: srv, errc: errc}
}

// spawnCoordinator builds and starts a coordinator over the worker URLs.
func spawnCoordinator(t *testing.T, workers ...string) (*Coordinator, string) {
	t.Helper()
	c := New(Config{Workers: workers, ProbeInterval: 200 * time.Millisecond, Replicas: DefaultReplicas})
	errc, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
		<-errc
	})
	return c, "http://" + c.Addr()
}

func gradeVia(t *testing.T, base, source string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(server.GradeRequest{Assignment: "assignment1", Source: source})
	resp, err := http.Post(base+"/v1/grade", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// variants renders n distinct submissions of assignment1.
func variants(t *testing.T, n int) []string {
	t.Helper()
	a := assignments.Get("assignment1")
	out := make([]string, 0, n)
	for _, k := range a.Synth.Sample(n) {
		out = append(out, a.Synth.Render(k))
	}
	if len(out) < n {
		t.Fatalf("only %d variants available, want %d", len(out), n)
	}
	return out
}

// TestCoordinatorRoutesAndCaches proves routing is deterministic: a
// resubmission through the coordinator lands on the same worker and is
// served from that worker's result store.
func TestCoordinatorRoutesAndCaches(t *testing.T) {
	w1 := spawnWorker(t)
	w2 := spawnWorker(t)
	defer w1.stop()
	defer w2.stop()
	_, base := spawnCoordinator(t, w1.base, w2.base)

	for _, src := range variants(t, 8) {
		resp, body := gradeVia(t, base, src)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold grade: status %d: %s", resp.StatusCode, body)
		}
		var gr server.GradeResponse
		if err := json.Unmarshal(body, &gr); err != nil {
			t.Fatal(err)
		}
		if gr.Cached {
			t.Fatal("first submission reported cached")
		}
		if resp.Header.Get("X-Request-ID") == "" {
			t.Fatal("no X-Request-ID through the coordinator")
		}

		// The resubmission must hit the owning worker's cache — that only
		// happens if the consistent-hash route is stable.
		resp2, body2 := gradeVia(t, base, src)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("resubmission: status %d: %s", resp2.StatusCode, body2)
		}
		var gr2 server.GradeResponse
		if err := json.Unmarshal(body2, &gr2); err != nil {
			t.Fatal(err)
		}
		if !gr2.Cached {
			t.Fatal("resubmission not served from the owner's result store (route unstable?)")
		}
	}
}

// TestCoordinatorForwardsWorkerRetryAfter pins the backpressure contract: a
// shed worker's 429 and its Retry-After pass through verbatim.
func TestCoordinatorForwardsWorkerRetryAfter(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			fmt.Fprintln(w, "ready")
			return
		}
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"admission queue full, retry later"}`)
	}))
	defer shedding.Close()
	_, base := spawnCoordinator(t, shedding.URL)

	resp, body := gradeVia(t, base, "void assignment1(int[] a) {}")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the worker's own \"7\"", ra)
	}
}

// TestCoordinatorReadyz pins the satellite: readiness follows the healthy
// worker count.
func TestCoordinatorReadyz(t *testing.T) {
	w1 := spawnWorker(t)
	defer w1.stop()
	c, base := spawnCoordinator(t, w1.base)

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with a healthy worker: %d", resp.StatusCode)
	}

	c.Membership().ReportFailure(w1.base)
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with zero healthy workers: %d, want 503", resp.StatusCode)
	}
}

// TestCoordinatorReroutesOnDeadWorker kills one of two workers and asserts
// every subsequent grade still succeeds — rerouted, never five-hundred-ed.
func TestCoordinatorReroutesOnDeadWorker(t *testing.T) {
	obs.Enable() // the reroute assertion below reads a counter
	defer obs.Disable()
	w1 := spawnWorker(t)
	w2 := spawnWorker(t)
	defer w2.stop()
	_, base := spawnCoordinator(t, w1.base, w2.base)

	srcs := variants(t, 12)
	for _, src := range srcs {
		if resp, body := gradeVia(t, base, src); resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-kill grade: %d: %s", resp.StatusCode, body)
		}
	}

	before := obs.ClusterReroutesTotal.Value()
	w1.kill() // crash, not drain: every open connection dies with it

	for _, src := range srcs {
		resp, body := gradeVia(t, base, src)
		if resp.StatusCode >= 500 {
			t.Fatalf("grade after worker kill: %d (want reroute, not failure): %s", resp.StatusCode, body)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("grade after worker kill: %d: %s", resp.StatusCode, body)
		}
	}
	if obs.ClusterReroutesTotal.Value() == before {
		t.Fatal("no reroutes counted though a worker died mid-run")
	}
}

// TestCoordinatorBatchFanout shards a batch over two workers and checks the
// merged response preserves submission order and counts.
func TestCoordinatorBatchFanout(t *testing.T) {
	w1 := spawnWorker(t)
	w2 := spawnWorker(t)
	defer w1.stop()
	defer w2.stop()
	_, base := spawnCoordinator(t, w1.base, w2.base)

	srcs := variants(t, 10)
	var breq server.BatchRequest
	breq.Assignment = "assignment1"
	breq.Submissions = make([]struct {
		ID     string `json:"id,omitempty"`
		Source string `json:"source"`
	}, len(srcs))
	for i, src := range srcs {
		breq.Submissions[i].ID = fmt.Sprintf("sub-%d", i)
		breq.Submissions[i].Source = src
	}
	body, _ := json.Marshal(breq)
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bresp server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if bresp.Graded != len(srcs) || bresp.Failed != 0 {
		t.Fatalf("graded %d failed %d, want %d/0", bresp.Graded, bresp.Failed, len(srcs))
	}
	if len(bresp.Results) != len(srcs) {
		t.Fatalf("%d results, want %d", len(bresp.Results), len(srcs))
	}
	for i, item := range bresp.Results {
		if item.ID != fmt.Sprintf("sub-%d", i) {
			t.Fatalf("result %d carries ID %q — shard merge broke submission order", i, item.ID)
		}
		if item.Error != "" || len(item.Report) == 0 {
			t.Fatalf("result %d: error %q, report %d bytes", i, item.Error, len(item.Report))
		}
	}
	if bresp.KBVersion != "builtin" {
		t.Fatalf("KBVersion %q, want builtin", bresp.KBVersion)
	}
}

// TestConfigReplicasSemantics pins that an explicit Replicas: 0 disables
// retries (it is not coerced back to the default) while negative selects
// DefaultReplicas.
func TestConfigReplicasSemantics(t *testing.T) {
	zero := Config{Replicas: 0}
	zero.defaults()
	if zero.Replicas != 0 {
		t.Fatalf("Replicas: 0 coerced to %d, want 0 (retries disabled)", zero.Replicas)
	}
	neg := Config{Replicas: -1}
	neg.defaults()
	if neg.Replicas != DefaultReplicas {
		t.Fatalf("Replicas: -1 = %d, want default %d", neg.Replicas, DefaultReplicas)
	}
}

// TestBatchShortShardResponseAccounted pins that a worker answering a batch
// shard with fewer results than submissions leaves no item unaccounted: the
// missing indices fail explicitly and Graded+Failed covers every submission.
func TestBatchShortShardResponseAccounted(t *testing.T) {
	short := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			fmt.Fprintln(w, "ready")
			return
		}
		var breq server.BatchRequest
		_ = json.NewDecoder(r.Body).Decode(&breq)
		// Answer only the first submission, dropping the rest.
		resp := server.BatchResponse{Assignment: breq.Assignment, KBVersion: "builtin", Graded: 1}
		resp.Results = []server.BatchItem{{ID: breq.Submissions[0].ID, Report: json.RawMessage(`{}`)}}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer short.Close()
	_, base := spawnCoordinator(t, short.URL)

	var breq server.BatchRequest
	breq.Assignment = "assignment1"
	breq.Submissions = make([]struct {
		ID     string `json:"id,omitempty"`
		Source string `json:"source"`
	}, 3)
	for i := range breq.Submissions {
		breq.Submissions[i].ID = fmt.Sprintf("sub-%d", i)
		breq.Submissions[i].Source = fmt.Sprintf("void assignment1(int[] a) { int x%d; }", i)
	}
	body, _ := json.Marshal(breq)
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bresp server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
		t.Fatal(err)
	}
	if bresp.Graded+bresp.Failed != len(breq.Submissions) {
		t.Fatalf("graded %d + failed %d != %d submissions — short response left items unaccounted",
			bresp.Graded, bresp.Failed, len(breq.Submissions))
	}
	if bresp.Failed != 2 {
		t.Fatalf("failed = %d, want 2", bresp.Failed)
	}
	for i := 1; i < 3; i++ {
		if bresp.Results[i].Error == "" {
			t.Fatalf("result %d dropped by the worker but carries no error", i)
		}
	}
}

// TestPeerFillServesOwnedKeys wires two workers with peer-fill stores and
// checks a key graded on its owner is fetchable through the other worker's
// store (the HTTP fill path), while /v1/store never chains fills.
func TestPeerFillServesOwnedKeys(t *testing.T) {
	// Two real workers with plain memory stores, fronted by peer-fill.
	a := assignments.Get("assignment1")
	reg := server.NewRegistry("", nil)
	reg.AddBuiltin(a.ID, a.Spec)
	if err := reg.Load(); err != nil {
		t.Fatal(err)
	}

	// Worker URLs are needed before construction to build the peer ring, so
	// start two placeholder-addressed servers first.
	mkWorker := func() (*server.Server, string, func()) {
		srv := server.New(server.Config{Registry: reg})
		errc, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := "http://" + srv.Addr()
		return srv, base, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			<-errc
		}
	}
	_, base1, stop1 := mkWorker()
	_, base2, stop2 := mkWorker()
	defer stop1()
	defer stop2()

	// Grade one submission directly on its ring owner so only that worker's
	// store holds the result, then peer-fill from the other node's view.
	src := a.Reference()
	key := store.NewKey("assignment1", "builtin", src)
	owner := NewRing([]string{trimSlash(base1), trimSlash(base2)}, DefaultVNodes).Lookup(RouteKey(key.Assignment, key.SourceHash))
	other := trimSlash(base2)
	if owner == other {
		other = trimSlash(base1)
	}
	body, _ := json.Marshal(server.GradeRequest{Assignment: "assignment1", Source: src})
	resp, err := http.Post(owner+"/v1/grade", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct grade on owner: %d", resp.StatusCode)
	}

	local := store.NewMemory(16)
	pf := NewPeerFill(local, other, []string{base1, base2}, DefaultVNodes, nil)
	got, ok := pf.Get(key)
	if !ok || len(got) == 0 {
		t.Fatal("peer fill did not serve the owner's cached result")
	}
	// The fill must have backfilled the local tier.
	if _, ok := local.Get(key); !ok {
		t.Fatal("peer fill did not backfill the local tier")
	}
}
