package cluster

// The membership flight recorder: a bounded ring buffer of the events that
// decide correctness under failure — workers leaving and rejoining the ring,
// failed probes, and every ring rebuild with its member diff. Ring rebuilds
// are the moments routing changes; when a post-incident question is "which
// worker owned this key at 12:03", the answer is in this log, not in any
// gauge. Served at GET /v1/events on the coordinator, folded into
// /v1/cluster/statusz, and mirrored as
// semfeed_cluster_membership_events_total{kind}.

import (
	"sync"
	"time"

	"semfeed/internal/obs"
)

// Event kinds recorded by the flight recorder.
const (
	EventWorkerUp    = "worker_up"    // a down worker passed a probe and rejoined
	EventWorkerDown  = "worker_down"  // a worker crossed the failure threshold
	EventProbeFail   = "probe_fail"   // a /readyz probe of a healthy worker failed
	EventRingRebuild = "ring_rebuild" // the routing ring was republished
)

// MemberEvent is one flight-recorder entry.
type MemberEvent struct {
	// Seq is a monotonically increasing sequence number; gaps mean the ring
	// buffer evicted entries between two reads.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	// Worker is the subject worker URL (empty for ring_rebuild).
	Worker string `json:"worker,omitempty"`
	// Detail says what triggered the event ("probe", "transport", ...).
	Detail string `json:"detail,omitempty"`
	// RingGen is the ring generation after the event (set on ring_rebuild;
	// the generation the other kinds observed).
	RingGen uint64 `json:"ring_gen"`
	// Added/Removed are the member diff of a ring_rebuild.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
	// Healthy is the healthy worker count after the event.
	Healthy int `json:"healthy"`
}

// defaultEventCap bounds the flight recorder. 256 events cover hours of
// normal churn; a flapping worker evicts the oldest entries first, and Seq
// gaps make the eviction visible to readers.
const defaultEventCap = 256

// eventLog is the bounded ring buffer. All methods are safe for concurrent
// use; record is called with the Membership mutex held and readers come in
// from HTTP handlers, so it takes its own lock.
type eventLog struct {
	mu    sync.Mutex
	cap   int
	seq   uint64
	buf   []MemberEvent // ring storage, len <= cap
	start int           // index of the oldest entry
	kinds map[string]int64
}

func newEventLog(capacity int) *eventLog {
	if capacity <= 0 {
		capacity = defaultEventCap
	}
	return &eventLog{cap: capacity, kinds: map[string]int64{}}
}

// record appends one event, evicting the oldest beyond capacity, and mirrors
// it into the labeled counter.
func (l *eventLog) record(e MemberEvent) {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % l.cap
	}
	l.kinds[e.Kind]++
	l.mu.Unlock()
	obs.ClusterMembershipEventsTotal.Inc(e.Kind)
}

// Events returns up to n most recent events, newest first (n <= 0 returns
// everything retained).
func (l *eventLog) Events(n int) []MemberEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := len(l.buf)
	if total == 0 {
		return nil
	}
	if n <= 0 || n > total {
		n = total
	}
	out := make([]MemberEvent, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the newest entry.
		idx := (l.start + total - 1 - i) % total
		out = append(out, l.buf[idx])
	}
	return out
}

// Counts returns the per-kind totals since process start (independent of
// ring-buffer eviction).
func (l *eventLog) Counts() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.kinds))
	for k, v := range l.kinds {
		out[k] = v
	}
	return out
}

// Len returns the number of retained events.
func (l *eventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// diffMembers computes (added, removed) between two sorted member lists.
func diffMembers(old, cur []string) (added, removed []string) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch {
		case old[i] == cur[j]:
			i++
			j++
		case old[i] < cur[j]:
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, cur[j])
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}
