package cluster

import (
	"net/http"
	"sync/atomic"
	"time"

	"semfeed/internal/obs"
	"semfeed/internal/store"
)

// peerRing is the ring-aware remote tier of a worker's store: a Get consults
// the peer that owns the key — the same (assignment, source hash) routing
// the coordinator uses, so the owner is the node most likely to have graded
// it. Keys this worker owns itself are a local miss by definition (there is
// no better copy elsewhere), and writes are never pushed: the owner writes
// its own results, replicas pull on demand. This is what warms a worker that
// joined (or rejoined after a crash) from its peers instead of regrading.
type peerRing struct {
	self  string
	ring  atomic.Pointer[Ring]
	peers map[string]*store.Peer
}

// NewPeerFill wraps local with a ring-aware HTTP fill path over peers.
// self must appear in peers (it identifies which keys are locally owned);
// addresses are base URLs. client may be nil for a short-timeout default.
func NewPeerFill(local store.Store, self string, peers []string, vnodes int, client *http.Client) store.Store {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	p := &peerRing{self: trimSlash(self), peers: make(map[string]*store.Peer, len(peers))}
	members := make([]string, 0, len(peers))
	for _, addr := range peers {
		addr = trimSlash(addr)
		if addr == "" {
			continue
		}
		members = append(members, addr)
		if addr != p.self {
			p.peers[addr] = store.NewPeer(addr, client)
		}
	}
	p.ring.Store(NewRing(members, vnodes))
	return &store.Tiered{Local: local, Fallback: p}
}

// Get asks the owning peer for k. Self-owned keys and unreachable owners are
// plain misses — peer fill is an optimization, never a dependency.
func (p *peerRing) Get(k store.Key) ([]byte, bool) {
	owner := p.ring.Load().Lookup(RouteKey(k.Assignment, k.SourceHash))
	peer := p.peers[owner]
	if peer == nil { // self-owned or unknown
		obs.ClusterPeerFillMissesTotal.Inc()
		return nil, false
	}
	body, ok := peer.Get(k)
	if ok {
		obs.ClusterPeerFillHitsTotal.Inc()
	} else {
		obs.ClusterPeerFillMissesTotal.Inc()
	}
	return body, ok
}

// Put is a no-op: the remote tier is read-only (see type comment).
func (p *peerRing) Put(store.Key, []byte) {}

// Len is unknown for the remote tier.
func (p *peerRing) Len() int { return 0 }
