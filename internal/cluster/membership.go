package cluster

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"semfeed/internal/obs"
)

// probeFailThreshold is how many consecutive probe failures mark a worker
// unhealthy. One failure is a blip; two on a short interval is a dead
// worker. A single probe success restores it — readiness is authoritative in
// the healthy direction.
const probeFailThreshold = 2

// Membership tracks the worker set and its health, publishing the
// healthy-only routing ring through an atomic.Pointer so the proxy path
// reads one snapshot load per request. Health has two inputs: periodic
// /readyz probes, and ReportFailure calls from the proxy when a forward
// fails in transport — the latter removes a dead worker from the ring
// immediately (fail-open rerouting) instead of waiting out a probe cycle.
type Membership struct {
	vnodes int
	client *http.Client

	ring atomic.Pointer[Ring]
	gen  atomic.Uint64 // ring generation: bumps on every published rebuild

	events *eventLog // the flight recorder (GET /v1/events)

	mu      sync.Mutex
	workers []string
	fails   map[string]int // consecutive probe failures; >= threshold means out

	stop    chan struct{}
	stopped chan struct{}
}

// NewMembership builds a membership over the static worker list. All workers
// start healthy — the first probe cycle corrects that within an interval,
// and a transport failure corrects it on first contact. client may be nil
// for a short-timeout default.
func NewMembership(workers []string, vnodes int, client *http.Client) *Membership {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	m := &Membership{vnodes: vnodes, client: client, fails: make(map[string]int), events: newEventLog(0)}
	for _, w := range workers {
		if w != "" {
			m.workers = append(m.workers, trimSlash(w))
		}
	}
	obs.ClusterWorkersConfigured.Set(int64(len(m.workers)))
	m.rebuild()
	return m
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// Ring returns the current healthy-only routing ring snapshot.
func (m *Membership) Ring() *Ring { return m.ring.Load() }

// Healthy returns the healthy workers (the ring's members).
func (m *Membership) Healthy() []string { return m.Ring().Members() }

// Workers returns the full configured worker list, healthy or not.
func (m *Membership) Workers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.workers))
	copy(out, m.workers)
	return out
}

// Events returns up to n most recent flight-recorder entries, newest first
// (n <= 0 returns everything retained).
func (m *Membership) Events(n int) []MemberEvent { return m.events.Events(n) }

// EventCounts returns the per-kind event totals since process start.
func (m *Membership) EventCounts() map[string]int64 { return m.events.Counts() }

// RingGeneration returns the generation of the currently published ring.
func (m *Membership) RingGeneration() uint64 { return m.gen.Load() }

// HealthSnapshot reports each configured worker's current health: true when
// the worker is in the routing ring.
func (m *Membership) HealthSnapshot() map[string]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]bool, len(m.workers))
	for _, w := range m.workers {
		out[w] = m.fails[w] < probeFailThreshold
	}
	return out
}

// ReportFailure records a transport-level failure talking to worker and
// drops it from the ring immediately. The next successful probe re-adds it.
func (m *Membership) ReportFailure(worker string) {
	m.mu.Lock()
	changed := m.fails[worker] < probeFailThreshold
	m.fails[worker] = probeFailThreshold
	m.mu.Unlock()
	if changed {
		m.events.record(MemberEvent{
			Kind: EventWorkerDown, Worker: worker, Detail: "transport",
			RingGen: m.gen.Load(), Healthy: m.Ring().Size(),
		})
		m.rebuild()
	}
}

// rebuild recomputes the healthy set and publishes a fresh ring if it
// changed. The mutex is held across the compute-build-compare-publish
// sequence (ring builds are microseconds): releasing it between computing
// the healthy set and storing the ring would let two concurrent rebuilds —
// ReportFailure from a proxy goroutine racing probeAll — publish out of
// order, leaving a stale ring that still routes to a just-failed worker
// with no later event to correct it.
func (m *Membership) rebuild() {
	m.mu.Lock()
	defer m.mu.Unlock()
	healthy := make([]string, 0, len(m.workers))
	for _, w := range m.workers {
		if m.fails[w] < probeFailThreshold {
			healthy = append(healthy, w)
		}
	}
	cur := m.ring.Load()
	next := NewRing(healthy, m.vnodes)
	if cur != nil && sameMembers(cur.Members(), next.Members()) {
		return
	}
	var old []string
	if cur != nil {
		old = cur.Members()
	}
	m.ring.Store(next)
	gen := m.gen.Add(1)
	added, removed := diffMembers(old, next.Members())
	m.events.record(MemberEvent{
		Kind: EventRingRebuild, RingGen: gen,
		Added: added, Removed: removed, Healthy: next.Size(),
	})
	obs.ClusterWorkers.Set(int64(next.Size()))
	obs.ClusterMembershipSwapsTotal.Inc()
	obs.Logger().Info("cluster_membership",
		"healthy", next.Size(),
		"ring_gen", gen,
		"configured", len(m.workers))
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a { // both sorted by NewRing
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Start launches the probe loop on the given interval; Stop ends it.
func (m *Membership) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	m.stop = make(chan struct{})
	m.stopped = make(chan struct{})
	go func() {
		defer close(m.stopped)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-tick.C:
				m.probeAll()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it to exit.
func (m *Membership) Stop() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.stopped
	m.stop = nil
}

// probeAll checks every configured worker's /readyz once and republishes the
// ring if any health state crossed the threshold. Probes run sequentially —
// the worker count is small and the probe timeout short.
func (m *Membership) probeAll() {
	changed := false
	for _, w := range m.Workers() {
		ok := m.probe(w)
		m.mu.Lock()
		was := m.fails[w] >= probeFailThreshold
		if ok {
			m.fails[w] = 0
		} else {
			m.fails[w]++
			obs.ClusterProbeFailuresTotal.Inc()
		}
		now := m.fails[w] >= probeFailThreshold
		m.mu.Unlock()
		if !ok && !was {
			// Record failed probes only while the worker still counts as
			// healthy: a dead worker failing every cycle would otherwise
			// flood the flight recorder and evict the events that matter.
			m.events.record(MemberEvent{
				Kind: EventProbeFail, Worker: w, Detail: "readyz",
				RingGen: m.gen.Load(), Healthy: m.Ring().Size(),
			})
		}
		if was != now {
			changed = true
			kind, detail := EventWorkerUp, "probe_ok"
			if now {
				kind, detail = EventWorkerDown, "probe_threshold"
			}
			m.events.record(MemberEvent{
				Kind: kind, Worker: w, Detail: detail,
				RingGen: m.gen.Load(), Healthy: m.Ring().Size(),
			})
			obs.Logger().Info("cluster_worker_health", "worker", w, "healthy", !now)
		}
	}
	if changed {
		m.rebuild()
	}
}

// probe is one readiness check: a 200 from /readyz. A draining or
// assignment-less worker answers 503 and is routed around, which is exactly
// the zero-downtime-restart contract.
func (m *Membership) probe(worker string) bool {
	resp, err := m.client.Get(worker + "/readyz")
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
