package cluster

import (
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEventLogRingBuffer pins the bounded-buffer semantics: eviction keeps
// the newest entries, Seq stays monotonic across eviction (gaps visible),
// and per-kind counts survive eviction.
func TestEventLogRingBuffer(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		kind := EventProbeFail
		if i%2 == 0 {
			kind = EventRingRebuild
		}
		l.record(MemberEvent{Kind: kind})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", l.Len())
	}
	evs := l.Events(0)
	if len(evs) != 4 {
		t.Fatalf("Events(0) = %d entries, want 4", len(evs))
	}
	// Newest first: Seq 10, 9, 8, 7.
	for i, e := range evs {
		if want := uint64(10 - i); e.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if got := l.Events(2); len(got) != 2 || got[0].Seq != 10 {
		t.Fatalf("Events(2) = %+v, want the 2 newest", got)
	}
	counts := l.Counts()
	if counts[EventRingRebuild] != 5 || counts[EventProbeFail] != 5 {
		t.Fatalf("counts survived eviction wrong: %+v", counts)
	}
}

func TestEventLogEmpty(t *testing.T) {
	l := newEventLog(0)
	if evs := l.Events(5); evs != nil {
		t.Fatalf("Events on empty log = %+v, want nil", evs)
	}
}

func TestDiffMembers(t *testing.T) {
	added, removed := diffMembers(
		[]string{"a", "b", "d"},
		[]string{"b", "c", "d", "e"},
	)
	if len(added) != 2 || added[0] != "c" || added[1] != "e" {
		t.Fatalf("added = %v, want [c e]", added)
	}
	if len(removed) != 1 || removed[0] != "a" {
		t.Fatalf("removed = %v, want [a]", removed)
	}
}

// TestMembershipFlightRecorder pins the event wiring end to end: a transport
// failure records worker_down + ring_rebuild with the member diff, and a
// probe-driven recovery records worker_up.
func TestMembershipFlightRecorder(t *testing.T) {
	var ready atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	m := NewMembership([]string{srv.URL, "http://127.0.0.1:1"}, 16, srv.Client())
	gen0 := m.RingGeneration()
	if gen0 == 0 {
		t.Fatal("genesis rebuild did not bump the ring generation")
	}

	m.ReportFailure(srv.URL)
	if m.RingGeneration() != gen0+1 {
		t.Fatalf("ring generation = %d after failure, want %d", m.RingGeneration(), gen0+1)
	}
	evs := m.Events(2)
	if len(evs) != 2 {
		t.Fatalf("Events(2) = %d entries, want worker_down + ring_rebuild", len(evs))
	}
	if evs[0].Kind != EventRingRebuild || len(evs[0].Removed) != 1 || evs[0].Removed[0] != srv.URL {
		t.Fatalf("newest event = %+v, want ring_rebuild removing %s", evs[0], srv.URL)
	}
	if evs[1].Kind != EventWorkerDown || evs[1].Worker != srv.URL || evs[1].Detail != "transport" {
		t.Fatalf("event before rebuild = %+v, want worker_down/transport", evs[1])
	}
	if h := m.HealthSnapshot(); h[srv.URL] {
		t.Fatal("health snapshot still reports the failed worker healthy")
	}

	ready.Store(true)
	m.probeAll()
	evs = m.Events(4)
	if evs[0].Kind != EventRingRebuild || len(evs[0].Added) != 1 || evs[0].Added[0] != srv.URL {
		t.Fatalf("recovery rebuild = %+v, want %s added", evs[0], srv.URL)
	}
	// The dead second worker's probe_fail may interleave; find the worker_up.
	recovered := false
	for _, e := range evs {
		if e.Kind == EventWorkerUp && e.Worker == srv.URL {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("no worker_up for %s in recent events: %+v", srv.URL, evs)
	}
	counts := m.EventCounts()
	if counts[EventWorkerDown] < 1 || counts[EventWorkerUp] < 1 || counts[EventRingRebuild] < 3 {
		t.Fatalf("event counts = %+v", counts)
	}
}

// TestMembershipProbeFailRecordedOncePerOutage pins the flood control: a
// worker failing probes records probe_fail only while it still counted as
// healthy, so a long-dead worker does not evict interesting events.
func TestMembershipProbeFailRecordedOncePerOutage(t *testing.T) {
	m := NewMembership([]string{"http://127.0.0.1:1"}, 16, &http.Client{Timeout: 200 * time.Millisecond})
	for i := 0; i < 5; i++ {
		m.probeAll()
	}
	if n := m.EventCounts()[EventProbeFail]; n != probeFailThreshold {
		t.Fatalf("probe_fail recorded %d times over a dead worker's outage, want %d (only while healthy)", n, probeFailThreshold)
	}
}

// TestEventLogConcurrent exercises the flight recorder under concurrent
// ReportFailure and probeAll — run with -race.
func TestEventLogConcurrent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	m := NewMembership([]string{srv.URL, "http://127.0.0.1:1"}, 16, srv.Client())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m.ReportFailure(srv.URL)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				m.probeAll()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m.Events(8)
				m.EventCounts()
				m.HealthSnapshot()
				m.RingGeneration()
			}
		}()
	}
	wg.Wait()
	evs := m.Events(0)
	if len(evs) == 0 {
		t.Fatal("no events recorded under concurrency")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Seq <= evs[i].Seq {
			t.Fatalf("event order not newest-first by Seq: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestRingShares pins the statusz ring-share computation: shares sum to 1
// and balance within a reasonable spread at the default vnode count.
func TestRingShares(t *testing.T) {
	members := []string{"http://w1", "http://w2", "http://w3"}
	shares := NewRing(members, 0).Shares()
	var sum float64
	for _, m := range members {
		s := shares[m]
		if s < 0.15 || s > 0.55 {
			t.Fatalf("share of %s = %g, badly unbalanced", m, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
	if one := NewRing([]string{"http://solo"}, 1).Shares(); one["http://solo"] != 1 {
		t.Fatalf("single-member share = %g, want 1", one["http://solo"])
	}
	if empty := NewRing(nil, 0).Shares(); len(empty) != 0 {
		t.Fatalf("empty ring shares = %v, want empty", empty)
	}
}
