package kb_test

import (
	"bytes"
	"strings"
	"testing"

	"semfeed/internal/analysis"
	"semfeed/internal/kb"
)

// minimalDef builds a definition with the given analyzers list; nil means
// the field is absent (inherit), an empty slice is the explicit opt-out.
func minimalDef(analyzers []string) *kb.AssignmentDef {
	def := &kb.AssignmentDef{
		ID: "lint-demo",
		Methods: []kb.MethodDef{{
			Name:     "m",
			Patterns: []kb.PatternUseDef{{Name: "counter-increment", Count: 1}},
		}},
	}
	if analyzers != nil {
		def.Analyzers = &analyzers
	}
	return def
}

func TestAssignmentDefAnalyzers(t *testing.T) {
	// Absent: inherit the grader default (spec.Analysis stays nil).
	spec, errs := minimalDef(nil).Compile()
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if spec.Analysis != nil {
		t.Error("absent analyzers field should leave spec.Analysis nil")
	}

	// Explicit list: a driver over exactly those analyzers.
	spec, errs = minimalDef([]string{"deadstore", "noreturn"}).Compile()
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if spec.Analysis == nil {
		t.Fatal("analyzers list should compile into a driver")
	}
	if names := spec.Analysis.Names(); len(names) != 2 || names[0] != "deadstore" || names[1] != "noreturn" {
		t.Errorf("driver names = %v", names)
	}

	// Explicit empty list: analysis disabled outright.
	spec, errs = minimalDef([]string{}).Compile()
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if spec.Analysis == nil || len(spec.Analysis.Names()) != 0 {
		t.Errorf("empty analyzers list should produce an empty driver, got %v", spec.Analysis)
	}

	// Unknown name: a collected violation.
	_, errs = minimalDef([]string{"spellcheck"}).Compile()
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "spellcheck") {
		t.Errorf("unknown analyzer should fail compile, got %v", errs)
	}
}

func TestAssignmentDefAnalyzersRoundTrip(t *testing.T) {
	def := minimalDef([]string{"usebeforedef", "constcond"})
	var buf bytes.Buffer
	if err := kb.WriteAssignmentDef(&buf, def); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"analyzers"`) {
		t.Fatalf("serialized definition lacks analyzers field:\n%s", buf.String())
	}
	back, err := kb.ReadAssignmentDef(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spec, errs := back.Compile()
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	out := kb.ExportAssignmentDef("lint-demo", "", spec)
	if out.Analyzers == nil {
		t.Fatal("exported definition lacks analyzers field")
	}
	if names := *out.Analyzers; len(names) != 2 || names[0] != "usebeforedef" || names[1] != "constcond" {
		t.Errorf("exported analyzers = %v", names)
	}
}

func TestAssignmentDefAnalyzersOptOutRoundTrip(t *testing.T) {
	// An explicit empty list (analysis disabled) must survive
	// Compile -> Export -> serialize -> Compile without silently
	// re-enabling the inherited grader default.
	spec, errs := minimalDef([]string{}).Compile()
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	out := kb.ExportAssignmentDef("lint-demo", "", spec)
	if out.Analyzers == nil || len(*out.Analyzers) != 0 {
		t.Fatalf("opt-out should export as an explicit empty list, got %v", out.Analyzers)
	}
	var buf bytes.Buffer
	if err := kb.WriteAssignmentDef(&buf, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"analyzers": []`) {
		t.Fatalf("serialized opt-out lacks explicit empty analyzers list:\n%s", buf.String())
	}
	back, err := kb.ReadAssignmentDef(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spec2, errs := back.Compile()
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if spec2.Analysis == nil || len(spec2.Analysis.Names()) != 0 {
		t.Errorf("opt-out did not survive the round-trip: Analysis = %v", spec2.Analysis)
	}
}

func TestAssignmentDefAnalyzersAllNames(t *testing.T) {
	// Every registry name is accepted in a KB file.
	spec, errs := minimalDef(analysis.Default().Names()).Compile()
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if got := len(spec.Analysis.Names()); got != len(analysis.Default().Names()) {
		t.Errorf("driver has %d analyzers", got)
	}
}
