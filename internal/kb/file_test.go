package kb_test

import (
	"bytes"
	"strings"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/constraint"
	"semfeed/internal/core"
	"semfeed/internal/kb"
)

// TestAssignmentDefRoundTrip exports every built-in assignment as a KB
// definition file, reads it back, compiles it, and checks that grading the
// reference solution with the recompiled spec reproduces the built-in
// spec's report exactly (score, max score, comment statuses).
func TestAssignmentDefRoundTrip(t *testing.T) {
	grader := core.NewGrader(core.Options{})
	for _, a := range assignments.All() {
		def := kb.ExportAssignmentDef(a.ID, a.Description, a.Spec)

		var buf bytes.Buffer
		if err := kb.WriteAssignmentDef(&buf, def); err != nil {
			t.Fatalf("%s: write: %v", a.ID, err)
		}
		back, err := kb.ReadAssignmentDef(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", a.ID, err)
		}
		spec, errs := back.Compile()
		if len(errs) > 0 {
			t.Fatalf("%s: compile: %v", a.ID, errs)
		}

		want, err := grader.Grade(a.Reference(), a.Spec)
		if err != nil {
			t.Fatalf("%s: grade builtin: %v", a.ID, err)
		}
		got, err := grader.Grade(a.Reference(), spec)
		if err != nil {
			t.Fatalf("%s: grade recompiled: %v", a.ID, err)
		}
		if got.Score != want.Score || got.MaxScore != want.MaxScore {
			t.Errorf("%s: recompiled spec scores %v/%v, builtin %v/%v",
				a.ID, got.Score, got.MaxScore, want.Score, want.MaxScore)
		}
		if len(got.Comments) != len(want.Comments) {
			t.Fatalf("%s: recompiled spec yields %d comments, builtin %d",
				a.ID, len(got.Comments), len(want.Comments))
		}
		for i := range got.Comments {
			if got.Comments[i].Status != want.Comments[i].Status || got.Comments[i].Source != want.Comments[i].Source {
				t.Errorf("%s: comment %d differs: got %s/%s want %s/%s", a.ID, i,
					got.Comments[i].Source, got.Comments[i].Status,
					want.Comments[i].Source, want.Comments[i].Status)
			}
		}
	}
}

// TestAssignmentDefViolationsCollected pins that Compile reports every
// violation, not just the first: an unknown pattern use, a constraint whose
// cross-reference does not resolve, and a constraint naming a missing node
// must all surface in one pass.
func TestAssignmentDefViolationsCollected(t *testing.T) {
	def := &kb.AssignmentDef{
		ID: "broken",
		Methods: []kb.MethodDef{{
			Name: "m",
			Patterns: []kb.PatternUseDef{
				{Name: "no-such-pattern", Count: 1},
				{Name: "digit-extraction", Count: 1},
			},
			Constraints: []constraint.Constraint{
				{Name: "bad-ref", Kind: constraint.Equality,
					Pi: "digit-extraction", Ui: "u1", Pj: "also-missing", Uj: "u0"},
				{Name: "bad-node", Kind: constraint.Equality,
					Pi: "digit-extraction", Ui: "nope", Pj: "digit-extraction", Uj: "u1"},
			},
		}},
	}
	spec, errs := def.Compile()
	if spec != nil {
		t.Fatalf("expected nil spec for broken definition")
	}
	if len(errs) != 3 {
		t.Fatalf("expected 3 violations, got %d: %v", len(errs), errs)
	}
	joined := ""
	for _, e := range errs {
		joined += e.Error() + "\n"
	}
	for _, want := range []string{"no-such-pattern", "also-missing", `no node "nope"`} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
}

// TestAssignmentDefGroupsAndInline exercises the definition features the
// built-ins do not use: an inline pattern and a variability group over it.
func TestAssignmentDefGroupsAndInline(t *testing.T) {
	def := &kb.AssignmentDef{
		ID: "grouped",
		Groups: []kb.GroupDef{{
			Name:    "even-any",
			Missing: "no even access found",
			Members: []string{"seq-even-access", "stride-2-even-access"},
		}},
		Methods: []kb.MethodDef{{
			Name:   "walk",
			Groups: []kb.GroupUseDef{{Name: "even-any", Count: 1}},
		}},
	}
	spec, errs := def.Compile()
	if len(errs) > 0 {
		t.Fatalf("compile: %v", errs)
	}
	if len(spec.Methods) != 1 || len(spec.Methods[0].Groups) != 1 {
		t.Fatalf("unexpected spec shape: %+v", spec)
	}
	if got := spec.Methods[0].Groups[0].Group.Members[1].Name(); got != "stride-2-even-access" {
		t.Fatalf("group member 1 = %s", got)
	}

	src := `void walk(int[] a) {
  int i = 0;
  while (i < a.length) {
    System.out.println(a[i]);
    i += 2;
  }
}`
	report, err := core.NewGrader(core.Options{}).Grade(src, spec)
	if err != nil {
		t.Fatalf("grade: %v", err)
	}
	if report.Score != 1 {
		t.Fatalf("stride-2 walk should satisfy the group: %v", report)
	}
}
