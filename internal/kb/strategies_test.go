package kb_test

import (
	"testing"

	"semfeed/internal/core"
	"semfeed/internal/kb"
)

func TestSequentialParityScanStrategy(t *testing.T) {
	spec := &core.AssignmentSpec{
		Name:    "strategy-demo",
		Methods: []core.MethodSpec{{Name: "assignment1"}},
	}
	spec.Methods[0].Apply(kb.SequentialParityScanStrategy())
	if got := spec.PatternCount(); got != 6 {
		t.Errorf("patterns applied = %d, want 6", got)
	}
	if got := spec.ConstraintCount(); got != 3 {
		t.Errorf("constraints applied = %d, want 3", got)
	}

	good := `void assignment1(int[] a) {
	  int odd = 0;
	  int even = 1;
	  for (int i = 0; i < a.length; i++) {
	    if (i % 2 == 1)
	      odd += a[i];
	    if (i % 2 == 0)
	      even *= a[i];
	  }
	  System.out.println(odd);
	  System.out.println(even);
	}`
	rep, err := core.NewGrader(core.Options{}).Grade(good, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllCorrect() {
		t.Errorf("canonical strategy solution should be all-Correct:\n%s", rep)
	}

	// A functionally plausible but different strategy (stride-2) violates
	// the enforced one — the paper's "structural requirements" row.
	stride := `void assignment1(int[] a) {
	  int odd = 0;
	  int even = 1;
	  for (int i = 1; i < a.length; i += 2)
	    odd += a[i];
	  for (int i = 0; i < a.length; i += 2)
	    even *= a[i];
	  System.out.println(odd);
	  System.out.println(even);
	}`
	rep, err = core.NewGrader(core.Options{}).Grade(stride, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllCorrect() {
		t.Error("the stride strategy must violate the enforced parity-scan strategy")
	}
}

func TestDigitReverseStrategy(t *testing.T) {
	spec := &core.AssignmentSpec{
		Name:    "reverse-demo",
		Methods: []core.MethodSpec{{Name: "rev"}},
	}
	spec.Methods[0].Apply(kb.DigitReverseStrategy())

	good := `int rev(int k) {
	  int r = 0;
	  int t = k;
	  while (t > 0) {
	    r = r * 10 + t % 10;
	    t /= 10;
	  }
	  return r;
	}`
	rep, err := core.NewGrader(core.Options{}).Grade(good, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllCorrect() {
		t.Errorf("canonical reverse should satisfy the strategy:\n%s", rep)
	}

	viaString := `int rev(int k) {
	  String s = "" + k;
	  int r = 0;
	  for (int i = s.length() - 1; i >= 0; i--)
	    r = r * 10 + (s.charAt(i) - '0');
	  return r;
	}`
	rep, err = core.NewGrader(core.Options{}).Grade(viaString, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllCorrect() {
		t.Error("string-based reversal must violate the digit-extraction strategy")
	}
}
