package kb

import (
	"semfeed/internal/constraint"
	"semfeed/internal/core"
)

// Strategies predefine pattern/constraint combinations for common
// algorithmic approaches (the paper's Section VII future work). They are
// assembled from the catalog so any assignment can apply them wholesale.

// SequentialParityScanStrategy enforces the canonical Assignment 1 approach:
// odd and even positions visited with sequential index scans and parity
// checks, accumulated into a sum and a product that both reach a print.
func SequentialParityScanStrategy() core.Strategy {
	return core.Strategy{
		Name:        "sequential-parity-scan",
		Description: "Scan the array once per parity, accumulate sum and product, print both",
		Patterns: []core.PatternUse{
			{Pattern: Pattern("seq-odd-access"), Count: 1},
			{Pattern: Pattern("seq-even-access"), Count: 1},
			{Pattern: Pattern("cond-accumulate-add"), Count: 1},
			{Pattern: Pattern("cond-accumulate-mul"), Count: 1},
			{Pattern: Pattern("assign-print"), Count: 2},
			{Pattern: Pattern("double-index-update"), Count: 0},
		},
		Constraints: []*constraint.Compiled{
			constraint.MustCompile(&constraint.Constraint{
				Name: "strategy-odd-access-is-summed", Kind: constraint.Equality,
				Pi: "seq-odd-access", Ui: "u5", Pj: "cond-accumulate-add", Uj: "u3",
				Feedback: constraint.Feedback{
					Satisfied: "The odd positions you access are the ones being summed",
					Violated:  "The values read at odd positions are not the ones being summed",
				},
			}, Registry()),
			constraint.MustCompile(&constraint.Constraint{
				Name: "strategy-even-access-is-multiplied", Kind: constraint.Equality,
				Pi: "seq-even-access", Ui: "u5", Pj: "cond-accumulate-mul", Uj: "u3",
				Feedback: constraint.Feedback{
					Satisfied: "The even positions you access are the ones being multiplied",
					Violated:  "The values read at even positions are not the ones being multiplied",
				},
			}, Registry()),
			constraint.MustCompile(&constraint.Constraint{
				Name: "strategy-sum-is-printed", Kind: constraint.EdgeExistence,
				Pi: "cond-accumulate-add", Ui: "u3", Pj: "assign-print", Uj: "u1", EdgeType: "Data",
				Feedback: constraint.Feedback{
					Satisfied: "The accumulated sum reaches a print statement",
					Violated:  "The accumulated sum is never printed",
				},
			}, Registry()),
		},
	}
}

// DigitReverseStrategy enforces the digit-extraction + reverse-accumulation
// approach shared by the P3-V1 and P4-V1 assignments.
func DigitReverseStrategy() core.Strategy {
	return core.Strategy{
		Name:        "digit-reverse",
		Description: "Extract digits with % 10 / / 10 and fold them into a decimal reverse",
		Patterns: []core.PatternUse{
			{Pattern: Pattern("digit-extraction"), Count: 1},
			{Pattern: Pattern("reverse-accumulate"), Count: 1},
			{Pattern: Pattern("double-index-update"), Count: 0},
		},
		Constraints: []*constraint.Compiled{
			constraint.MustCompile(&constraint.Constraint{
				Name: "strategy-reverse-under-digit-loop", Kind: constraint.Equality,
				Pi: "reverse-accumulate", Ui: "u2", Pj: "digit-extraction", Uj: "u1",
				Feedback: constraint.Feedback{
					Satisfied: "The reverse accumulates inside the digit loop",
					Violated:  "Build the reverse inside the digit-extraction loop",
				},
			}, Registry()),
			constraint.MustCompile(&constraint.Constraint{
				Name: "strategy-reverse-reads-digits", Kind: constraint.Equality,
				Pi: "digit-extraction", Ui: "u2", Pj: "reverse-accumulate", Uj: "u1",
				Feedback: constraint.Feedback{
					Satisfied: "The reverse step consumes the extracted digit directly",
					Violated:  "The reverse step should consume the digit extracted with % 10",
				},
			}, Registry()),
		},
	}
}
