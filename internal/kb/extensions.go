package kb

import (
	"sort"

	"semfeed/internal/pattern"
)

// Extension patterns implement the paper's Section VII future work — pattern
// variability: the same semantics achieved by a different strategy. They are
// kept outside the 24-pattern published catalog and are combined with
// catalog patterns through pattern.Group.
var extensions = map[string]*pattern.Compiled{}

func registerExt(p *pattern.Pattern) {
	if _, dup := extensions[p.Name]; dup {
		panic("kb: duplicate extension pattern " + p.Name)
	}
	if _, dup := catalog[p.Name]; dup {
		panic("kb: extension pattern shadows catalog pattern " + p.Name)
	}
	extensions[p.Name] = pattern.MustCompile(p)
}

// Extension returns a compiled extension pattern; it panics on unknown names.
func Extension(name string) *pattern.Compiled {
	p, ok := extensions[name]
	if !ok {
		panic("kb: unknown extension pattern " + name)
	}
	return p
}

// ExtensionNames lists the extension patterns, sorted.
func ExtensionNames() []string {
	out := make([]string, 0, len(extensions))
	for n := range extensions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EvenAccessGroup is the variability cluster the paper uses as its running
// future-work example: accessing even positions either with an i % 2 == 0
// check (the catalog's seq-even-access) or by striding the index with i += 2
// and no parity check (stride-2-even-access). Section VI-B's third
// discrepancy class disappears under this group.
func EvenAccessGroup() *pattern.Group {
	return pattern.MustGroup(
		"even-access-any",
		"Accessing even positions of an array, by parity check or by index striding",
		"You are not visiting the even positions of the array; either loop with i % 2 == 0 or stride the index with i += 2",
		Pattern("seq-even-access"),
		Extension("stride-2-even-access"),
	)
}

// MulAccumGroup clusters the two shapes of a product accumulation: guarded
// by an inner condition inside a loop (the catalog's cond-accumulate-mul) or
// directly under a single loop condition (loop-accumulate-mul), which is how
// the stride-2 strategy accumulates.
func MulAccumGroup() *pattern.Group {
	return pattern.MustGroup(
		"mul-accumulate-any",
		"Accumulating a product, under a guard or directly in the loop",
		"No cumulative multiplication found; multiply an accumulator seeded with 1 inside a loop",
		Pattern("cond-accumulate-mul"),
		Extension("loop-accumulate-mul"),
	)
}

func init() {
	// loop-accumulate-mul — product accumulation directly under a single
	// loop condition (no inner guard).
	registerExt(&pattern.Pattern{
		Name:        "loop-accumulate-mul",
		Description: "Cumulatively multiplying directly under a loop condition",
		Vars:        []string{"lm"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"lm = 1"}, Approx: []string{"lm ="},
				Feedback: pattern.NodeFeedback{Correct: "Accumulator {lm} starts at 1", Incorrect: "Accumulator {lm} should start at 1 for a product"}},
			{ID: "u1", Type: "Cond", Exact: []string{"re:."}},
			{ID: "u2", Type: "Assign", Exact: []string{"lm *=", "lm = lm *"},
				Feedback: pattern.NodeFeedback{Correct: "{lm} accumulates with *="}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u2", Type: "Data"},
			{From: "u1", To: "u2", Type: "Ctrl"},
		},
		Present: "You accumulate a product into {lm} inside the loop",
		Missing: "No in-loop cumulative multiplication found",
	})

	// stride-2-even-access — the i += 2 strategy of Section VI-B's third
	// Assignment 1 discrepancy class.
	registerExt(&pattern.Pattern{
		Name:        "stride-2-even-access",
		Description: "Accessing even positions by striding the index two at a time",
		Vars:        []string{"vs", "vy"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Untyped", Exact: []string{"vs"}},
			{ID: "u1", Type: "Assign", Exact: []string{"vy = 0"}, Approx: []string{"vy ="},
				Feedback: pattern.NodeFeedback{Correct: "{vy} starts at 0, the first even position", Incorrect: "{vy} should start at 0, the first even position"}},
			{ID: "u2", Type: "Assign", Exact: []string{"vy += 2", "vy = vy + 2"}, Approx: []string{"vy += ", "vy = vy +"},
				Feedback: pattern.NodeFeedback{Correct: "{vy} strides two positions at a time", Incorrect: "{vy} should stride exactly two positions at a time"}},
			{ID: "u3", Type: "Cond", Exact: []string{"vy < vs.length"},
				Approx:   []string{"vy <= vs.length"},
				Feedback: pattern.NodeFeedback{Correct: "{vy} stays below {vs}.length", Incorrect: "{vy} is out of bounds: it must stay below {vs}.length"}},
			{ID: "u4", Type: "Untyped", Exact: []string{"vs[vy]"}, Approx: []string{`re:${vs}\[[^\]]*${vy}[^\]]*\]`},
				Feedback: pattern.NodeFeedback{Correct: "{vy} is used exactly to access {vs}", Incorrect: "You should access {vs} by using {vy} exactly"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u3", Type: "Data"},
			{From: "u0", To: "u4", Type: "Data"},
			{From: "u1", To: "u3", Type: "Data"},
			{From: "u1", To: "u4", Type: "Data"},
			{From: "u3", To: "u2", Type: "Ctrl"},
			{From: "u3", To: "u4", Type: "Ctrl"},
		},
		Present: "You visit the even positions of {vs} by striding {vy} two at a time",
		Missing: "No stride-2 access over the array found",
	})
}
