package kb_test

import (
	"testing"

	"semfeed/internal/java/parser"
	"semfeed/internal/kb"
	"semfeed/internal/match"
	"semfeed/internal/pdg"
)

// patternBehavior gives each catalog pattern a minimal snippet it must match
// and one it must not. Together with the Definition 7 oracle this pins the
// intended semantics of the published knowledge base.
var patternBehavior = map[string]struct{ positive, negative string }{
	"seq-odd-access": {
		positive: `void f(int[] a) { int s = 0; for (int i = 0; i < a.length; i++) if (i % 2 == 1) s += a[i]; }`,
		negative: `void f(int[] a) { int s = 0; for (int i = 0; i < a.length; i++) s += a[i]; }`,
	},
	"seq-even-access": {
		positive: `void f(int[] a) { int p = 1; for (int i = 0; i < a.length; i++) if (i % 2 == 0) p *= a[i]; }`,
		negative: `void f(int[] a) { int p = 1; for (int i = 0; i < a.length; i++) if (i % 2 == 1) p *= a[i]; }`,
	},
	"cond-accumulate-add": {
		positive: `void f(int[] a) { int s = 0; for (int i = 0; i < a.length; i++) if (a[i] > 0) s += a[i]; }`,
		negative: `void f(int[] a) { int s = 0; s += a[0]; }`,
	},
	"cond-accumulate-mul": {
		positive: `void f(int[] a) { int p = 1; for (int i = 0; i < a.length; i++) if (a[i] > 0) p *= a[i]; }`,
		negative: `void f(int[] a) { int p = 1; for (int i = 0; i < a.length; i++) if (a[i] > 0) p += a[i]; }`,
	},
	"assign-print": {
		positive: `void f(int n) { int r = n * 2; System.out.println(r); }`,
		negative: `void f(int n) { int r = n * 2; System.out.println("done"); }`,
	},
	"double-index-update": {
		positive: `void f(int[] a) { int i = 0; while (i < a.length) { i++; i++; } }`,
		negative: `void f(int[] a) { int i = 0; while (i < a.length) { i++; } }`,
	},
	"counter-increment": {
		positive: `void f(int n) { int c = 0; while (n > 0) { c++; n /= 2; } }`,
		negative: `void f(int n) { int c = 0; c = n; }`,
	},
	"running-product": {
		positive: `void f(int n) { long p = 1; for (int i = 1; i <= n; i++) p *= i; }`,
		negative: `void f(int n) { long p = 1; for (int i = 1; i <= n; i++) p += i; }`,
	},
	"bounded-loop": {
		positive: `void f(int k) { int x = 1; while (x <= k) x = x * 2; }`,
		negative: `void f(int k) { int x = 1; while (x > 0) x--; }`,
	},
	"digit-extraction": {
		positive: `void f(int k) { int t = k; while (t > 0) { int d = t % 10; t /= 10; } }`,
		negative: `void f(int k) { int t = k; while (t > 0) { t--; } }`,
	},
	"reverse-accumulate": {
		positive: `void f(int k) { int r = 0; int t = k; while (t > 0) { r = r * 10 + t % 10; t /= 10; } }`,
		negative: `void f(int k) { int r = 0; int t = k; while (t > 0) { r = r + t; t /= 10; } }`,
	},
	"equality-check": {
		positive: `void f(int a, int b) { if (a == b) System.out.println("eq"); }`,
		negative: `void f(int a, int b) { if (a < b) System.out.println("lt"); }`,
	},
	"sum-of-cubes": {
		positive: `void f(int k) { int s = 0; int t = k; while (t > 0) { int d = t % 10; s += d * d * d; t /= 10; } }`,
		negative: `void f(int k) { int s = 0; int t = k; while (t > 0) { s += t; t /= 10; } }`,
	},
	"fib-advance": {
		positive: `void f(int k) { long a = 1; long b = 1; while (a <= k) { long c = a + b; a = b; b = c; } }`,
		negative: `void f(int k) { long a = 1; long b = 1; while (a <= k) { a = b; b = a + b; } }`,
	},
	"interval-filter": {
		positive: `void f(int n) { int x = 1; while (x < 100) { if (x >= n) System.out.println(x); x *= 2; } }`,
		negative: `void f(int n) { int x = 1; while (x < 100) { x *= 2; } }`,
	},
	"scanner-file-loop": {
		positive: `void f() { Scanner s = new Scanner(new File("d.txt")); while (s.hasNext()) s.next(); s.close(); }`,
		negative: `void f() { Scanner s = new Scanner(System.in); while (s.hasNext()) s.next(); s.close(); }`,
	},
	"record-field-read": {
		positive: `void f() { Scanner s = new Scanner(new File("d.txt")); int i = 1; while (s.hasNext()) { if (i % 5 == 1) s.next(); i++; } s.close(); }`,
		negative: `void f() { Scanner s = new Scanner(new File("d.txt")); while (s.hasNext()) s.next(); s.close(); }`,
	},
	"guarded-counter": {
		positive: `void f(int[] a) { int c = 0; for (int i = 0; i < a.length; i++) if (a[i] > 0) c++; System.out.println(c); }`,
		negative: `void f(int[] a) { int c = 0; for (int i = 0; i < a.length; i++) if (a[i] > 0) c++; }`,
	},
	"string-field-compare": {
		positive: `void f(String w, String q) { if (w.equals(q)) System.out.println("hit"); }`,
		negative: `void f(int w, int q) { if (w > q) System.out.println("hit"); }`,
	},
	"int-field-compare": {
		positive: `void f(int year) { int y = 1984; if (y == year) System.out.println("hit"); }`,
		negative: `void f(int year) { int y = 1984; if (y > 0) System.out.println("hit"); }`,
	},
	"new-result-array": {
		positive: `void f(double[] a) { double[] r = new double[a.length - 1]; r[0] = 1; }`,
		negative: `void f(double[] a) { double r = a[0]; r += 1; }`,
	},
	"derivative-step": {
		positive: `void f(double[] a) { double[] r = new double[a.length - 1]; for (int i = 1; i < a.length; i++) r[i - 1] = a[i] * i; }`,
		negative: `void f(double[] a) { double[] r = new double[a.length - 1]; for (int i = 1; i < a.length; i++) r[i - 1] = a[i]; }`,
	},
	"powsum-step": {
		positive: `void f(double[] a, double x) { double s = 0; for (int i = 0; i < a.length; i++) s += a[i] * Math.pow(x, i); }`,
		negative: `void f(double[] a, double x) { double s = 0; for (int i = 0; i < a.length; i++) s -= a[i]; }`,
	},
	"conditional-print": {
		positive: `void f(int n) { if (n > 0) System.out.println("pos"); }`,
		negative: `void f(int n) { System.out.println(n); }`,
	},
}

func TestEveryCatalogPatternBehavior(t *testing.T) {
	if len(patternBehavior) != len(kb.Names()) {
		t.Fatalf("behavior table covers %d patterns, catalog has %d", len(patternBehavior), len(kb.Names()))
	}
	for _, name := range kb.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, ok := patternBehavior[name]
			if !ok {
				t.Fatalf("no behavior entry for %s", name)
			}
			p := kb.Pattern(name)
			for _, probe := range []struct {
				src  string
				want bool
			}{{b.positive, true}, {b.negative, false}} {
				m, err := parser.ParseMethod(probe.src)
				if err != nil {
					t.Fatalf("parse: %v\n%s", err, probe.src)
				}
				g := pdg.Build(m)
				embs := match.Find(p, g)
				// A "positive" probe must produce at least one all-exact
				// embedding; a "negative" one must produce no exact-complete
				// embedding at all (approximate-only hits are fine: they are
				// the pattern saying "present but wrong").
				exact := 0
				for i := range embs {
					if err := match.Verify(&embs[i], g); err != nil {
						t.Errorf("invalid embedding: %v", err)
					}
					if embs[i].AllCorrect() {
						exact++
					}
				}
				if probe.want && exact == 0 {
					t.Errorf("positive probe produced no exact embedding\n%s\ngraph:\n%s", probe.src, g)
				}
				if !probe.want && exact > 0 {
					t.Errorf("negative probe produced %d exact embeddings\n%s", exact, probe.src)
				}
			}
		})
	}
}
