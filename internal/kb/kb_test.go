package kb_test

import (
	"testing"

	"semfeed/internal/kb"
)

func TestCatalogHas24UniquePatterns(t *testing.T) {
	if got := len(kb.Names()); got != 24 {
		t.Errorf("catalog has %d patterns, the paper's knowledge base has 24", got)
	}
}

// TestVariableNamespacesDisjoint: Definition 10 requires pairwise-disjoint
// variable sets so any two patterns can be correlated by containment
// constraints; the catalog enforces it globally.
func TestVariableNamespacesDisjoint(t *testing.T) {
	owner := map[string]string{}
	for _, name := range kb.Names() {
		p := kb.Pattern(name)
		for _, v := range p.Source.Vars {
			if prev, dup := owner[v]; dup {
				t.Errorf("variable %q used by both %s and %s", v, prev, name)
			}
			owner[v] = name
		}
	}
}

func TestEveryPatternHasPresenceFeedback(t *testing.T) {
	for _, name := range kb.Names() {
		p := kb.Pattern(name)
		if p.Source.Present == "" {
			t.Errorf("%s: empty present feedback", name)
		}
		if p.Source.Missing == "" {
			t.Errorf("%s: empty missing feedback", name)
		}
	}
}

func TestRegistryConsistency(t *testing.T) {
	reg := kb.Registry()
	if len(reg) != len(kb.Names()) {
		t.Error("registry and names disagree")
	}
	for name, p := range reg {
		if p.Name() != name {
			t.Errorf("registry key %q holds pattern %q", name, p.Name())
		}
	}
}

func TestUnknownPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pattern on an unknown name must panic")
		}
	}()
	kb.Pattern("does-not-exist")
}

// TestEveryNodeHasExactTemplate: pattern nodes always carry an exact form;
// nodes with no approx and no incorrect feedback are the crucial anchors.
func TestEveryNodeHasExactTemplate(t *testing.T) {
	crucial := 0
	for _, name := range kb.Names() {
		p := kb.Pattern(name)
		for _, n := range p.Nodes {
			if n.ExactT.Empty() {
				t.Errorf("%s/%s: empty exact template", name, n.ID)
			}
			if n.Crucial() {
				crucial++
			}
		}
	}
	if crucial == 0 {
		t.Error("the catalog should contain crucial anchor nodes (the paper's u4 discussion)")
	}
}
