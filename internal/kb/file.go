package kb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"semfeed/internal/analysis"
	"semfeed/internal/constraint"
	"semfeed/internal/core"
	"semfeed/internal/pattern"
)

// AssignmentDef is the serializable knowledge-base definition of one
// assignment: the file format the grading service hot-loads from its KB
// directory and kblint validates. A definition references patterns from the
// built-in catalog (and its Section VII extensions) by name, may declare
// additional inline patterns, and wires pattern uses, variability groups and
// constraints to the expected methods exactly as core.AssignmentSpec does.
type AssignmentDef struct {
	ID          string            `json:"id"`
	Description string            `json:"description,omitempty"`
	Patterns    []pattern.Pattern `json:"patterns,omitempty"` // inline pattern definitions
	Groups      []GroupDef        `json:"groups,omitempty"`
	Methods     []MethodDef       `json:"methods"`

	// Analyzers selects the static analyzers run on submissions to this
	// assignment, by name from the built-in analysis registry. Absent (nil)
	// means "inherit the grader default"; an explicit empty list disables
	// analysis for this assignment — the pointer keeps the two states apart
	// in JSON so the opt-out survives an Export round-trip. Hot-reloads with
	// the rest of the definition.
	Analyzers *[]string `json:"analyzers,omitempty"`
}

// GroupDef declares a pattern variability group over named patterns.
type GroupDef struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Missing     string   `json:"missing,omitempty"`
	Members     []string `json:"members"`
}

// MethodDef describes one expected method of the assignment.
type MethodDef struct {
	Name        string                  `json:"name"`
	Patterns    []PatternUseDef         `json:"patterns,omitempty"`
	Groups      []GroupUseDef           `json:"groups,omitempty"`
	Constraints []constraint.Constraint `json:"constraints,omitempty"`
}

// PatternUseDef attaches a named pattern with its expected occurrence count;
// count 0 declares a bad pattern.
type PatternUseDef struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// GroupUseDef attaches a named group with its expected occurrence count.
type GroupUseDef struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// ReadAssignmentDef decodes one assignment definition, rejecting unknown
// fields so typos in hand-authored KB files surface as errors.
func ReadAssignmentDef(r io.Reader) (*AssignmentDef, error) {
	var def AssignmentDef
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&def); err != nil {
		return nil, fmt.Errorf("kb: decode assignment definition: %w", err)
	}
	return &def, nil
}

// WriteAssignmentDef encodes the definition as indented JSON.
func WriteAssignmentDef(w io.Writer, def *AssignmentDef) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(def)
}

// Compile resolves and validates the definition into a grading spec. Unlike
// the panicking builders of the built-in catalog, every violation is
// collected — unknown pattern references, bad inline patterns, constraints
// whose cross-references do not resolve — so tooling (kblint) can report all
// of them in one pass. The spec is nil when any violation was found.
func (d *AssignmentDef) Compile() (*core.AssignmentSpec, []error) {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if d.ID == "" {
		fail("assignment definition has no id")
	}
	if len(d.Methods) == 0 {
		fail("assignment %s: no methods", d.ID)
	}

	// The pattern registry the definition resolves against: the published
	// catalog plus the extension patterns, plus the file's inline patterns.
	registry := map[string]*pattern.Compiled{}
	for name, p := range catalog {
		registry[name] = p
	}
	for name, p := range extensions {
		registry[name] = p
	}
	for i := range d.Patterns {
		p := &d.Patterns[i]
		if _, dup := registry[p.Name]; dup {
			fail("assignment %s: inline pattern %q shadows an existing pattern", d.ID, p.Name)
			continue
		}
		compiled, err := pattern.Compile(p)
		if err != nil {
			fail("assignment %s: inline pattern %q: %v", d.ID, p.Name, err)
			continue
		}
		registry[p.Name] = compiled
	}

	groups := map[string]*pattern.Group{}
	for _, gd := range d.Groups {
		var members []*pattern.Compiled
		ok := true
		for _, m := range gd.Members {
			p, found := registry[m]
			if !found {
				fail("assignment %s: group %q references unknown pattern %q", d.ID, gd.Name, m)
				ok = false
				continue
			}
			members = append(members, p)
		}
		if !ok {
			continue
		}
		g, err := pattern.NewGroup(gd.Name, gd.Description, gd.Missing, members...)
		if err != nil {
			fail("assignment %s: %v", d.ID, err)
			continue
		}
		if _, dup := groups[gd.Name]; dup {
			fail("assignment %s: duplicate group %q", d.ID, gd.Name)
			continue
		}
		groups[gd.Name] = g
	}

	spec := &core.AssignmentSpec{Name: d.ID}
	if d.Analyzers != nil {
		if names := *d.Analyzers; len(names) == 0 {
			spec.Analysis = analysis.NewDriver() // explicit opt-out
		} else if drv, err := analysis.Default().Driver(names, nil); err != nil {
			fail("assignment %s: %v", d.ID, err)
		} else {
			spec.Analysis = drv
		}
	}
	seenMethods := map[string]bool{}
	for _, md := range d.Methods {
		if md.Name == "" {
			fail("assignment %s: method with no name", d.ID)
			continue
		}
		if seenMethods[md.Name] {
			fail("assignment %s: duplicate method %q", d.ID, md.Name)
			continue
		}
		seenMethods[md.Name] = true
		ms := core.MethodSpec{Name: md.Name}
		for _, pu := range md.Patterns {
			p, found := registry[pu.Name]
			if !found {
				fail("assignment %s: method %s references unknown pattern %q", d.ID, md.Name, pu.Name)
				continue
			}
			if pu.Count < 0 {
				fail("assignment %s: method %s: pattern %q has negative count %d", d.ID, md.Name, pu.Name, pu.Count)
				continue
			}
			ms.Patterns = append(ms.Patterns, core.PatternUse{Pattern: p, Count: pu.Count})
		}
		for _, gu := range md.Groups {
			g, found := groups[gu.Name]
			if !found {
				fail("assignment %s: method %s references unknown group %q", d.ID, md.Name, gu.Name)
				continue
			}
			ms.Groups = append(ms.Groups, core.GroupUse{Group: g, Count: gu.Count})
		}
		for i := range md.Constraints {
			c := &md.Constraints[i]
			compiled, err := constraint.Compile(c, registry)
			if err != nil {
				fail("assignment %s: method %s: %v", d.ID, md.Name, err)
				continue
			}
			ms.Constraints = append(ms.Constraints, compiled)
		}
		spec.Methods = append(spec.Methods, ms)
	}

	if len(errs) > 0 {
		return nil, errs
	}
	return spec, nil
}

// ExportAssignmentDef turns a compiled spec back into its serializable
// definition. Patterns that are the catalog or extension entry of the same
// name are referenced by name; anything else is inlined, so the output is
// self-contained and round-trips through Compile.
func ExportAssignmentDef(id, description string, spec *core.AssignmentSpec) *AssignmentDef {
	def := &AssignmentDef{ID: id, Description: description}
	if spec.Analysis != nil {
		// An empty driver (the explicit opt-out) exports as an explicit empty
		// list — not an absent field — so disabling analysis survives the
		// round-trip through Compile.
		names := spec.Analysis.Names()
		def.Analyzers = &names
	}
	inlined := map[string]bool{}
	groupsSeen := map[string]bool{}

	builtin := func(p *pattern.Compiled) bool {
		return catalog[p.Name()] == p || extensions[p.Name()] == p
	}
	inline := func(p *pattern.Compiled) {
		if builtin(p) || inlined[p.Name()] {
			return
		}
		inlined[p.Name()] = true
		def.Patterns = append(def.Patterns, *p.Source)
	}

	for _, m := range spec.Methods {
		md := MethodDef{Name: m.Name}
		for _, pu := range m.Patterns {
			inline(pu.Pattern)
			md.Patterns = append(md.Patterns, PatternUseDef{Name: pu.Pattern.Name(), Count: pu.Count})
		}
		for _, gu := range m.Groups {
			if !groupsSeen[gu.Group.Name] {
				groupsSeen[gu.Group.Name] = true
				gd := GroupDef{Name: gu.Group.Name, Description: gu.Group.Description, Missing: gu.Group.Missing}
				for _, member := range gu.Group.Members {
					inline(member)
					gd.Members = append(gd.Members, member.Name())
				}
				def.Groups = append(def.Groups, gd)
			}
			md.Groups = append(md.Groups, GroupUseDef{Name: gu.Group.Name, Count: gu.Count})
		}
		for _, con := range m.Constraints {
			for _, p := range constraintPatterns(con) {
				inline(p)
			}
			md.Constraints = append(md.Constraints, *con.Source)
		}
		def.Methods = append(def.Methods, md)
	}
	sort.Slice(def.Patterns, func(i, j int) bool { return def.Patterns[i].Name < def.Patterns[j].Name })
	return def
}

// constraintPatterns resolves the compiled patterns a constraint references,
// looking each name up in the merged built-in registry first; names that are
// not built-ins must already be inlined by the caller's pattern uses, which
// Compile verifies.
func constraintPatterns(con *constraint.Compiled) []*pattern.Compiled {
	var out []*pattern.Compiled
	add := func(name string) {
		if name == "" {
			return
		}
		if p, ok := catalog[name]; ok {
			out = append(out, p)
		} else if p, ok := extensions[name]; ok {
			out = append(out, p)
		}
	}
	src := con.Source
	add(src.Pi)
	add(src.Pj)
	for _, s := range src.Supporting {
		add(s)
	}
	return out
}
