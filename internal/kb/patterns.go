// Package kb is the knowledge base of the paper's Section III/VI artifact:
// twenty-four unique, reusable patterns plus the per-assignment constraint
// sets and pattern selections for the twelve assignments of Table I.
//
// Pattern variables are globally unique across patterns so that any two
// patterns can be correlated by containment constraints (Definition 10
// requires pairwise-disjoint variable sets).
package kb

import (
	"sort"

	"semfeed/internal/pattern"
)

// catalog holds the 24 unique patterns, compiled once at init.
var catalog = map[string]*pattern.Compiled{}

func register(p *pattern.Pattern) {
	if _, dup := catalog[p.Name]; dup {
		panic("kb: duplicate pattern " + p.Name)
	}
	catalog[p.Name] = pattern.MustCompile(p)
}

// Pattern returns a compiled pattern from the catalog by name; it panics on
// unknown names (the catalog is static).
func Pattern(name string) *pattern.Compiled {
	p, ok := catalog[name]
	if !ok {
		panic("kb: unknown pattern " + name)
	}
	return p
}

// Registry returns the full catalog keyed by name (for constraint compilation).
func Registry() map[string]*pattern.Compiled { return catalog }

// Names returns the catalog's pattern names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	// 1. seq-odd-access — the paper's p_o (Figure 4): accessing odd
	// positions sequentially in an array.
	register(&pattern.Pattern{
		Name:        "seq-odd-access",
		Description: "Accessing odd positions sequentially in an array",
		Vars:        []string{"os", "ox"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Untyped", Exact: []string{"os"}},
			{ID: "u1", Type: "Assign", Exact: []string{"ox = 0"}, Approx: []string{"ox ="},
				Feedback: pattern.NodeFeedback{Correct: "{ox} is initialized to 0", Incorrect: "{ox} should be initialized to 0"}},
			{ID: "u2", Type: "Assign", Exact: []string{"ox++", "ox += 1", "ox = ox + 1", "++ox"},
				Approx:   []string{"ox +=", "ox = ox +", "ox--", "ox -="},
				Feedback: pattern.NodeFeedback{Correct: "{ox} is incremented by 1", Incorrect: "{ox} should be incremented by 1"}},
			{ID: "u3", Type: "Cond", Exact: []string{"ox < os.length"},
				Approx:   []string{"ox <= os.length", "ox < os.length - 1", "ox < os.length + 1"},
				Feedback: pattern.NodeFeedback{Correct: "{ox} does not go beyond {os}.length - 1", Incorrect: "{ox} is out of bounds: it must stay below {os}.length"}},
			{ID: "u4", Type: "Cond", Exact: []string{"ox % 2 == 1", "ox % 2 != 0"},
				Feedback: pattern.NodeFeedback{Correct: "You are using {ox} % 2 == 1 to control that {ox} is odd"}},
			{ID: "u5", Type: "Untyped", Exact: []string{"os[ox]"}, Approx: []string{`re:${os}\[[^\]]*${ox}[^\]]*\]`},
				Feedback: pattern.NodeFeedback{Correct: "{ox} is used exactly to access {os}", Incorrect: "You should access {os} by using {ox} exactly"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u3", Type: "Data"},
			{From: "u0", To: "u5", Type: "Data"},
			{From: "u1", To: "u3", Type: "Data"},
			{From: "u1", To: "u5", Type: "Data"},
			{From: "u3", To: "u2", Type: "Ctrl"},
			{From: "u3", To: "u4", Type: "Ctrl"},
			{From: "u4", To: "u5", Type: "Ctrl"},
		},
		Present: "You are correctly accessing odd positions sequentially in array {os}",
		Missing: "You are not accessing odd positions sequentially in an array; consider using a loop and a condition — recall that odd is computed by i % 2 == 1, where i is an index variable",
	})

	// 2. seq-even-access — the even-position sibling of p_o.
	register(&pattern.Pattern{
		Name:        "seq-even-access",
		Description: "Accessing even positions sequentially in an array",
		Vars:        []string{"es", "ex"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Untyped", Exact: []string{"es"}},
			{ID: "u1", Type: "Assign", Exact: []string{"ex = 0"}, Approx: []string{"ex ="},
				Feedback: pattern.NodeFeedback{Correct: "{ex} is initialized to 0", Incorrect: "{ex} should be initialized to 0"}},
			{ID: "u2", Type: "Assign", Exact: []string{"ex++", "ex += 1", "ex = ex + 1", "++ex"},
				Approx:   []string{"ex +=", "ex = ex +", "ex--", "ex -="},
				Feedback: pattern.NodeFeedback{Correct: "{ex} is incremented by 1", Incorrect: "{ex} should be incremented by 1"}},
			{ID: "u3", Type: "Cond", Exact: []string{"ex < es.length"},
				Approx:   []string{"ex <= es.length", "ex < es.length - 1", "ex < es.length + 1"},
				Feedback: pattern.NodeFeedback{Correct: "{ex} does not go beyond {es}.length - 1", Incorrect: "{ex} is out of bounds: it must stay below {es}.length"}},
			{ID: "u4", Type: "Cond", Exact: []string{"ex % 2 == 0", "ex % 2 != 1"},
				Feedback: pattern.NodeFeedback{Correct: "You are using {ex} % 2 == 0 to control that {ex} is even"}},
			{ID: "u5", Type: "Untyped", Exact: []string{"es[ex]"}, Approx: []string{`re:${es}\[[^\]]*${ex}[^\]]*\]`},
				Feedback: pattern.NodeFeedback{Correct: "{ex} is used exactly to access {es}", Incorrect: "You should access {es} by using {ex} exactly"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u3", Type: "Data"},
			{From: "u0", To: "u5", Type: "Data"},
			{From: "u1", To: "u3", Type: "Data"},
			{From: "u1", To: "u5", Type: "Data"},
			{From: "u3", To: "u2", Type: "Ctrl"},
			{From: "u3", To: "u4", Type: "Ctrl"},
			{From: "u4", To: "u5", Type: "Ctrl"},
		},
		Present: "You are correctly accessing even positions sequentially in array {es}",
		Missing: "You are not accessing even positions sequentially in an array; consider using a loop and a condition — recall that even is computed by i % 2 == 0, where i is an index variable",
	})

	// 3. cond-accumulate-add — the paper's p_a (Figure 5).
	register(&pattern.Pattern{
		Name:        "cond-accumulate-add",
		Description: "Cumulatively adding into a variable under a condition inside a loop",
		Vars:        []string{"ca"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"ca = 0"}, Approx: []string{"ca ="},
				Feedback: pattern.NodeFeedback{Correct: "Accumulator {ca} starts at 0", Incorrect: "Accumulator {ca} should start at 0 for a sum"}},
			{ID: "u1", Type: "Cond", Exact: []string{"re:."}},
			{ID: "u2", Type: "Cond", Exact: []string{"re:."}},
			// The accumulation operator is the crucial anchor (no approx):
			// a looser template would cross-match the product accumulator.
			{ID: "u3", Type: "Assign", Exact: []string{"ca +=", "ca = ca +"},
				Feedback: pattern.NodeFeedback{Correct: "{ca} accumulates with +="}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u3", Type: "Data"},
			{From: "u1", To: "u2", Type: "Ctrl"},
			{From: "u2", To: "u3", Type: "Ctrl"},
		},
		Present: "You are conditionally accumulating a sum into {ca}",
		Missing: "No conditional cumulative addition found; you need a variable that sums values under a condition inside a loop",
	})

	// 4. cond-accumulate-mul — multiplicative sibling of p_a.
	register(&pattern.Pattern{
		Name:        "cond-accumulate-mul",
		Description: "Cumulatively multiplying into a variable under a condition inside a loop",
		Vars:        []string{"cm"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"cm = 1"}, Approx: []string{"cm ="},
				Feedback: pattern.NodeFeedback{Correct: "Accumulator {cm} starts at 1", Incorrect: "Accumulator {cm} should start at 1 for a product"}},
			{ID: "u1", Type: "Cond", Exact: []string{"re:."}},
			{ID: "u2", Type: "Cond", Exact: []string{"re:."}},
			// Crucial anchor, mirroring cond-accumulate-add's u3.
			{ID: "u3", Type: "Assign", Exact: []string{"cm *=", "cm = cm *"},
				Feedback: pattern.NodeFeedback{Correct: "{cm} accumulates with *="}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u3", Type: "Data"},
			{From: "u1", To: "u2", Type: "Ctrl"},
			{From: "u2", To: "u3", Type: "Ctrl"},
		},
		Present: "You are conditionally accumulating a product into {cm}",
		Missing: "No conditional cumulative multiplication found; you need a variable that multiplies values under a condition inside a loop",
	})

	// 5. assign-print — the paper's p_p (Figure 6): a computed variable is
	// printed to console.
	register(&pattern.Pattern{
		Name:        "assign-print",
		Description: "A computed variable is printed to console",
		Vars:        []string{"pd"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"pd"}},
			{ID: "u1", Type: "Call", Exact: []string{`re:System\.out\.print(ln|f)?\(.*\b${pd}\b.*\)`},
				Feedback: pattern.NodeFeedback{Correct: "{pd} is printed to console"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
		},
		Present: "You print the computed value of {pd} to console",
		Missing: "A computed result is never printed to console; remember the assignment asks you to print your results",
	})

	// 6. double-index-update — a "bad pattern" (expected count 0): updating
	// the same index variable twice under one loop condition.
	register(&pattern.Pattern{
		Name:        "double-index-update",
		Description: "BAD: a sentinel loop updates its index variable twice",
		Vars:        []string{"bi"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Cond", Exact: []string{"bi"}},
			{ID: "u1", Type: "Assign", Exact: []string{"bi++", "bi += ", "bi = bi +"},
				Feedback: pattern.NodeFeedback{Correct: "{bi} is updated here"}},
			{ID: "u2", Type: "Assign", Exact: []string{"bi++", "bi += ", "bi = bi +"},
				Feedback: pattern.NodeFeedback{Correct: "{bi} is updated a second time in the same iteration"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Ctrl"},
			{From: "u0", To: "u2", Type: "Ctrl"},
		},
		Present: "Your loop updates its index exactly once per iteration",
		Missing: "Your loop updates its index variable more than once per iteration; every other update skips elements",
	})

	// 7. counter-increment — a counter driven through a loop.
	register(&pattern.Pattern{
		Name:        "counter-increment",
		Description: "A counter variable initialized and incremented inside a loop",
		Vars:        []string{"ni"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"ni = 0", "ni = 1", "ni = 2"}, Approx: []string{"ni ="},
				Feedback: pattern.NodeFeedback{Correct: "Counter {ni} starts from a fixed base", Incorrect: "Counter {ni} starts from the wrong base value"}},
			{ID: "u1", Type: "Cond", Exact: []string{"re:."}},
			// Approx stays narrow (decrements only): a broad "ni +=" form
			// would cross-match sum accumulators, which are structurally
			// counters too.
			{ID: "u2", Type: "Assign", Exact: []string{"ni++", "ni += 1", "ni = ni + 1"},
				Approx:   []string{"ni--", "ni -= 1"},
				Feedback: pattern.NodeFeedback{Correct: "Counter {ni} advances by 1", Incorrect: "Counter {ni} should advance by exactly 1"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u2", Type: "Data"},
			{From: "u1", To: "u2", Type: "Ctrl"},
		},
		Present: "You drive a counter {ni} through the loop",
		Missing: "No loop counter found; you need a variable that counts loop iterations",
	})

	// 8. running-product — factorial-style product accumulation.
	register(&pattern.Pattern{
		Name:        "running-product",
		Description: "A running product (factorial-style) accumulated in a loop",
		Vars:        []string{"rp", "rq"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"rp = 1"}, Approx: []string{"rp = 0", "rp ="},
				Feedback: pattern.NodeFeedback{Correct: "Product {rp} starts at 1", Incorrect: "Product {rp} must start at 1 — starting at 0 keeps it at 0 forever"}},
			{ID: "u1", Type: "Cond", Exact: []string{"re:."}},
			{ID: "u2", Type: "Assign", Exact: []string{"rp *= rq", "rp = rp * rq"}, Approx: []string{"rp *=", "rp = rp *", "rp +="},
				Feedback: pattern.NodeFeedback{Correct: "{rp} multiplies in {rq} each step", Incorrect: "{rp} should be multiplied (not added) by the running term"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u2", Type: "Data"},
			{From: "u1", To: "u2", Type: "Ctrl"},
		},
		Present: "You build a running product in {rp}",
		Missing: "No running product found; factorials require multiplying an accumulator inside a loop",
	})

	// 9. bounded-loop — a loop whose condition compares against an input
	// bound (e.g. while (f * (n + 1) <= k)).
	register(&pattern.Pattern{
		Name:        "bounded-loop",
		Description: "A loop bounded by an input limit",
		Vars:        []string{"wk"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Decl", Exact: []string{"wk"}},
			{ID: "u1", Type: "Cond", Exact: []string{`re:<= ${wk}$`}, Approx: []string{`re:< ${wk}$`, `re:(<|<=) ${wk}\b`},
				Feedback: pattern.NodeFeedback{Correct: "Your loop stops once the running value would exceed {wk}", Incorrect: "Check the comparison against {wk}: the loop should continue while the value is <= {wk}"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
		},
		Present: "Your search loop is correctly bounded by the input {wk}",
		Missing: "No loop bounded by the input limit found; the search must advance while the running value stays within the input",
	})

	// 10. digit-extraction — the % 10 / / 10 digit loop.
	register(&pattern.Pattern{
		Name:        "digit-extraction",
		Description: "Extracting decimal digits with % 10 and / 10 in a loop",
		Vars:        []string{"dg"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"dg ="},
				Feedback: pattern.NodeFeedback{Correct: "You work on a copy {dg} of the input"}},
			{ID: "u1", Type: "Cond", Exact: []string{"dg > 0", "dg != 0", "dg >= 1"}, Approx: []string{"dg >= 0", "dg"},
				Feedback: pattern.NodeFeedback{Correct: "The digit loop runs while {dg} > 0", Incorrect: "The digit loop condition on {dg} is off; it should run while {dg} > 0"}},
			{ID: "u2", Type: "Untyped", Exact: []string{"dg % 10"},
				Feedback: pattern.NodeFeedback{Correct: "{dg} % 10 extracts the last digit"}},
			{ID: "u3", Type: "Assign", Exact: []string{"dg /= 10", "dg = dg / 10"}, Approx: []string{"dg /=", "dg = dg /", "dg -="},
				Feedback: pattern.NodeFeedback{Correct: "{dg} drops its last digit with / 10", Incorrect: "{dg} should drop its last digit by dividing by 10"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
			{From: "u1", To: "u2", Type: "Ctrl"},
			{From: "u1", To: "u3", Type: "Ctrl"},
		},
		Present: "You extract digits of {dg} with % 10 and / 10",
		Missing: "No digit-extraction loop found; use n % 10 to read the last digit and n / 10 to drop it",
	})

	// 11. reverse-accumulate — building the decimal reverse of a number.
	register(&pattern.Pattern{
		Name:        "reverse-accumulate",
		Description: "Building the decimal reverse: r = r * 10 + n % 10",
		Vars:        []string{"rv", "rt"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"rv = 0"}, Approx: []string{"rv ="},
				Feedback: pattern.NodeFeedback{Correct: "Reverse {rv} starts at 0", Incorrect: "Reverse {rv} should start at 0"}},
			{ID: "u1", Type: "Assign",
				Exact:    []string{"rv = rv * 10 + rt % 10", "rv = 10 * rv + rt % 10", "rv = rv * 10 + (rt % 10)"},
				Approx:   []string{"re:^${rv} ="},
				Feedback: pattern.NodeFeedback{Correct: "{rv} = {rv} * 10 + {rt} % 10 builds the reverse", Incorrect: "The reverse step is off; use {rv} = {rv} * 10 + {rt} % 10"}},
			{ID: "u2", Type: "Cond", Exact: []string{"re:."}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
			{From: "u2", To: "u1", Type: "Ctrl"},
		},
		Present: "You build the decimal reverse in {rv}",
		Missing: "No reverse accumulation found; build the reverse with r = r * 10 + n % 10 inside the digit loop",
	})

	// 12. equality-check — comparing a computed value against the original.
	register(&pattern.Pattern{
		Name:        "equality-check",
		Description: "Comparing a computed value against the original input",
		Vars:        []string{"qa", "qb"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Cond", Exact: []string{"qa == qb"}, Approx: []string{"qa != qb", "qa >= qb", "qa <= qb"},
				Feedback: pattern.NodeFeedback{Correct: "You compare {qa} against {qb} with ==", Incorrect: "The final comparison of {qa} and {qb} should use =="}},
		},
		Present: "You test equality of {qa} and {qb}",
		Missing: "The final equality comparison is missing; compare your computed value against the input",
	})

	// 13. sum-of-cubes — accumulating cubes of digits.
	register(&pattern.Pattern{
		Name:        "sum-of-cubes",
		Description: "Accumulating the cubes of extracted digits",
		Vars:        []string{"c3", "d3"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"c3 = 0"}, Approx: []string{"c3 ="},
				Feedback: pattern.NodeFeedback{Correct: "Cube sum {c3} starts at 0", Incorrect: "Cube sum {c3} should start at 0"}},
			{ID: "u1", Type: "Assign",
				Exact:    []string{"c3 += d3 * d3 * d3", "c3 = c3 + d3 * d3 * d3"},
				Approx:   []string{"c3 += d3 * d3", "c3 +=", "c3 = c3 +"},
				Feedback: pattern.NodeFeedback{Correct: "{c3} accumulates {d3} cubed", Incorrect: "{c3} must accumulate the cube {d3} * {d3} * {d3}, not some other power"}},
			{ID: "u2", Type: "Cond", Exact: []string{"re:."}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
			{From: "u2", To: "u1", Type: "Ctrl"},
		},
		Present: "You sum the cubes of the digits into {c3}",
		Missing: "No sum of digit cubes found; add d*d*d for each extracted digit d",
	})

	// 14. fib-advance — the Fibonacci rotation with a temporary.
	register(&pattern.Pattern{
		Name:        "fib-advance",
		Description: "Advancing a seeded Fibonacci pair with a temporary",
		Vars:        []string{"fa", "fb", "fc"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"fc = fa + fb", "fc = fb + fa"}, Approx: []string{"fc ="},
				Feedback: pattern.NodeFeedback{Correct: "{fc} = {fa} + {fb} computes the next Fibonacci number", Incorrect: "The next Fibonacci number must be the sum {fa} + {fb}"}},
			// The u4 -Data-> u1 edge requires {fa} = {fb} to read the
			// pre-rotation value: rotating in the wrong order breaks it.
			{ID: "u1", Type: "Assign", Exact: []string{"fa = fb"},
				Feedback: pattern.NodeFeedback{Correct: "{fa} shifts to {fb}"}},
			{ID: "u2", Type: "Assign", Exact: []string{"fb = fc"},
				Feedback: pattern.NodeFeedback{Correct: "{fb} shifts to {fc}"}},
			{ID: "u3", Type: "Cond", Exact: []string{"re:."}},
			{ID: "u4", Type: "Assign", Exact: []string{"fb = 1"}, Approx: []string{"fb ="},
				Feedback: pattern.NodeFeedback{Correct: "{fb} is seeded with 1", Incorrect: "{fb} should be seeded with 1 (the second Fibonacci number)"}},
			{ID: "u5", Type: "Assign", Exact: []string{"fa = 1"}, Approx: []string{"fa ="},
				Feedback: pattern.NodeFeedback{Correct: "{fa} is seeded with 1", Incorrect: "{fa} should be seeded with 1 (the first Fibonacci number)"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u2", Type: "Data"},
			{From: "u3", To: "u0", Type: "Ctrl"},
			{From: "u3", To: "u1", Type: "Ctrl"},
			{From: "u3", To: "u2", Type: "Ctrl"},
			{From: "u4", To: "u0", Type: "Data"},
			{From: "u4", To: "u1", Type: "Data"},
			{From: "u5", To: "u0", Type: "Data"},
		},
		Present: "You advance the Fibonacci pair ({fa}, {fb}) with temporary {fc}",
		Missing: "No Fibonacci advance found; seed two consecutive numbers with 1 and rotate them with a temporary each iteration (shift {fa} before overwriting {fb})",
	})

	// 15. interval-filter — filtering values above a lower bound.
	register(&pattern.Pattern{
		Name:        "interval-filter",
		Description: "Filtering running values against the interval's lower bound",
		Vars:        []string{"qn"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Decl", Exact: []string{"qn"}},
			{ID: "u1", Type: "Cond", Exact: []string{`re:>= ${qn}$`, `re:^${qn} <=`}, Approx: []string{`re:> ${qn}$`, `re:^${qn} <`},
				Feedback: pattern.NodeFeedback{Correct: "Values are admitted once they reach the lower bound {qn}", Incorrect: "The lower-bound check against {qn} should be inclusive (>=)"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
		},
		Present: "You filter values against the lower bound {qn}",
		Missing: "The interval's lower bound is never checked; only count values of at least the lower input",
	})

	// 16. scanner-file-loop — reading a file token stream with Scanner.
	register(&pattern.Pattern{
		Name:        "scanner-file-loop",
		Description: "Opening a file Scanner, looping on hasNext, and closing it",
		Vars:        []string{"sf"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{`re:${sf} = new Scanner\(new File\(`}, Approx: []string{`re:${sf} = new Scanner\(`},
				Feedback: pattern.NodeFeedback{Correct: "{sf} scans the records file", Incorrect: "{sf} should scan the records file (new Scanner(new File(...)))"}},
			{ID: "u1", Type: "Cond", Exact: []string{`re:${sf}\.hasNext\(\)`}, Approx: []string{`re:${sf}\.hasNext`},
				Feedback: pattern.NodeFeedback{Correct: "The read loop runs while {sf}.hasNext()", Incorrect: "Loop on {sf}.hasNext() to consume every record"}},
			{ID: "u2", Type: "Call", Exact: []string{`re:${sf}\.close\(\)`},
				Feedback: pattern.NodeFeedback{Correct: "{sf} is closed after reading"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
			{From: "u0", To: "u2", Type: "Data"},
		},
		Present: "You stream the records file through Scanner {sf}",
		Missing: "No file-reading loop found; open a Scanner over the records file and loop while it hasNext()",
	})

	// 17. record-field-read — reading one record field under an i % 5
	// position check.
	register(&pattern.Pattern{
		Name:        "record-field-read",
		Description: "Reading a record field under a position (i % 5) check",
		Vars:        []string{"rf"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Cond", Exact: []string{"rf % 5 =="}, Approx: []string{"rf % "},
				Feedback: pattern.NodeFeedback{Correct: "Record fields are selected by {rf} % 5", Incorrect: "Record fields should be selected with {rf} % 5 — records have five fields"}},
			{ID: "u1", Type: "Untyped", Exact: []string{`re:\.(next|nextInt|nextLong)\(\)`},
				Feedback: pattern.NodeFeedback{Correct: "A field is consumed from the scanner"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Ctrl"},
		},
		Present: "You read record fields guarded by a {rf} % 5 position check",
		Missing: "Record fields are not read position by position; guard each read with i % 5 == position",
	})

	// 18. guarded-counter — a filtered counter whose total is printed. The
	// print anchor (u3) pins {gc} to the counter that produces the answer,
	// distinguishing it from loop-index counters.
	register(&pattern.Pattern{
		Name:        "guarded-counter",
		Description: "Incrementing a counter under a filter and printing the total",
		Vars:        []string{"gc"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"gc = 0"}, Approx: []string{"gc ="},
				Feedback: pattern.NodeFeedback{Correct: "Counter {gc} starts at 0", Incorrect: "Counter {gc} should start at 0"}},
			{ID: "u1", Type: "Cond", Exact: []string{"re:."},
				Feedback: pattern.NodeFeedback{Correct: "{gc} only grows when the filter holds"}},
			{ID: "u2", Type: "Assign", Exact: []string{"gc++", "gc += 1", "gc = gc + 1"}, Approx: []string{"gc +=", "gc = gc +"},
				Feedback: pattern.NodeFeedback{Correct: "{gc} counts matches one at a time", Incorrect: "{gc} should grow by exactly 1 per match"}},
			{ID: "u3", Type: "Call", Exact: []string{`re:System\.out\.print(ln|f)?\(.*\b${gc}\b.*\)`},
				Feedback: pattern.NodeFeedback{Correct: "The total in {gc} is printed"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u2", Type: "Data"},
			{From: "u1", To: "u2", Type: "Ctrl"},
			{From: "u2", To: "u3", Type: "Data"},
		},
		Present: "You count matches into {gc} and print the total",
		Missing: "No guarded counting found; increment a counter only when the filter holds and print the total",
	})

	// 19. string-field-compare — comparing String fields with .equals.
	register(&pattern.Pattern{
		Name:        "string-field-compare",
		Description: "Comparing String fields with .equals (not ==)",
		Vars:        []string{"se"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Cond", Exact: []string{`re:${se}\.equals\(`}, Approx: []string{`re:${se} ==`},
				Feedback: pattern.NodeFeedback{Correct: "{se} is compared with .equals", Incorrect: "Strings must be compared with .equals, not == ({se})"}},
		},
		Present: "You compare the String field {se} with .equals",
		Missing: "No String comparison found; compare the name fields with .equals",
	})

	// 20. int-field-compare — comparing an int field against a parameter.
	register(&pattern.Pattern{
		Name:        "int-field-compare",
		Description: "Comparing a stored int field against the query parameter",
		Vars:        []string{"ia", "ib"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Cond", Exact: []string{"ia == ib"}, Approx: []string{"ia != ib", "ia >= ib", "ia <= ib"},
				Feedback: pattern.NodeFeedback{Correct: "{ia} is matched against {ib} with ==", Incorrect: "Match {ia} against {ib} with =="}},
			{ID: "u1", Type: "Decl", Exact: []string{"ib"}},
		},
		Edges: []pattern.Edge{
			{From: "u1", To: "u0", Type: "Data"},
		},
		Present: "You match the stored field {ia} against the input {ib}",
		Missing: "The input parameter is never compared against the stored field",
	})

	// 21. new-result-array — allocating a result array sized from the input.
	register(&pattern.Pattern{
		Name:        "new-result-array",
		Description: "Allocating a result array sized from the input array",
		Vars:        []string{"na", "nb"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Decl", Exact: []string{"na"}},
			{ID: "u1", Type: "Assign",
				Exact:    []string{`re:${nb} = new (int|long|double)\[${na}\.length - 1\]`},
				Approx:   []string{`re:${nb} = new (int|long|double)\[`},
				Feedback: pattern.NodeFeedback{Correct: "Result {nb} has length {na}.length - 1", Incorrect: "The derivative has one coefficient fewer: allocate {nb} with {na}.length - 1"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
		},
		Present: "You allocate the result array {nb} from {na}",
		Missing: "No result array allocated; the derivative needs its own output array",
	})

	// 22. derivative-step — one power-rule step.
	register(&pattern.Pattern{
		Name:        "derivative-step",
		Description: "The power-rule step r[i-1] = a[i] * i",
		Vars:        []string{"da", "dr", "dx"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign",
				Exact:    []string{"dr[dx - 1] = da[dx] * dx", "dr[dx - 1] = dx * da[dx]"},
				Approx:   []string{`re:${dr}\[.*\] =`},
				Feedback: pattern.NodeFeedback{Correct: "{dr}[{dx} - 1] = {da}[{dx}] * {dx} applies the power rule", Incorrect: "The power rule is {dr}[{dx} - 1] = {da}[{dx}] * {dx}"}},
			{ID: "u1", Type: "Cond", Exact: []string{"re:."}},
			{ID: "u2", Type: "Assign", Exact: []string{"dx = 1"}, Approx: []string{"dx = 0", "dx ="},
				Feedback: pattern.NodeFeedback{Correct: "The power loop starts at 1 (the constant term vanishes)", Incorrect: "Start the power loop at 1: the constant term has no derivative"}},
		},
		Edges: []pattern.Edge{
			{From: "u1", To: "u0", Type: "Ctrl"},
			{From: "u2", To: "u0", Type: "Data"},
		},
		Present: "You apply the power rule into {dr}",
		Missing: "No power-rule step found; each coefficient becomes a[i] * i at position i - 1",
	})

	// 23. powsum-step — polynomial evaluation via Math.pow accumulation.
	register(&pattern.Pattern{
		Name:        "powsum-step",
		Description: "Polynomial evaluation: sum += a[i] * Math.pow(x, i)",
		Vars:        []string{"ps", "pa", "pv", "px"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"ps = 0"}, Approx: []string{"ps ="},
				Feedback: pattern.NodeFeedback{Correct: "Sum {ps} starts at 0", Incorrect: "Sum {ps} should start at 0"}},
			{ID: "u1", Type: "Assign",
				Exact: []string{
					"ps += pa[px] * Math.pow(pv, px)",
					"ps = ps + pa[px] * Math.pow(pv, px)",
					"ps += Math.pow(pv, px) * pa[px]",
					"ps = ps + Math.pow(pv, px) * pa[px]",
				},
				Approx:   []string{`re:^${ps} (\+=|=)`},
				Feedback: pattern.NodeFeedback{Correct: "{ps} accumulates {pa}[{px}] * {pv}^{px}", Incorrect: "Each term is {pa}[{px}] * Math.pow({pv}, {px})"}},
			{ID: "u2", Type: "Cond", Exact: []string{"re:."}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Data"},
			{From: "u2", To: "u1", Type: "Ctrl"},
		},
		Present: "You evaluate the polynomial term by term into {ps}",
		Missing: "No term accumulation found; sum a[i] * Math.pow(x, i) over all coefficients",
	})

	// 24. conditional-print — printing under a decision (both branches).
	register(&pattern.Pattern{
		Name:        "conditional-print",
		Description: "Printing a verdict under a condition",
		Vars:        []string{},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Cond", Exact: []string{"re:."}},
			{ID: "u1", Type: "Call", Exact: []string{`re:System\.out\.print`},
				Feedback: pattern.NodeFeedback{Correct: "A verdict is printed under the decision"}},
		},
		Edges: []pattern.Edge{
			{From: "u0", To: "u1", Type: "Ctrl"},
		},
		Present: "You print the verdict from the final decision",
		Missing: "The verdict is never printed from the final decision; print inside the if/else",
	})
}
