package kb_test

import (
	"bytes"
	"testing"

	"semfeed/internal/java/parser"
	"semfeed/internal/kb"
	"semfeed/internal/match"
	"semfeed/internal/pattern"
	"semfeed/internal/pdg"
)

// TestExportRoundTrip: the JSON knowledge base re-imports into patterns that
// behave identically to the compiled-in ones.
func TestExportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := kb.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	imported, err := pattern.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(imported) != len(kb.Names()) {
		t.Fatalf("round trip produced %d patterns, want %d", len(imported), len(kb.Names()))
	}

	// Behavioral equivalence on a probe graph.
	m, err := parser.ParseMethod(`void assignment1(int[] a) {
	  int odd = 0;
	  int even = 1;
	  for (int i = 0; i < a.length; i++) {
	    if (i % 2 == 1)
	      odd += a[i];
	    if (i % 2 == 0)
	      even *= a[i];
	  }
	  System.out.println(odd);
	  System.out.println(even);
	}`)
	if err != nil {
		t.Fatal(err)
	}
	g := pdg.Build(m)
	byName := map[string]*pattern.Compiled{}
	for _, p := range imported {
		byName[p.Name()] = p
	}
	for _, name := range kb.Names() {
		orig := match.Find(kb.Pattern(name), g)
		re := match.Find(byName[name], g)
		if len(orig) != len(re) {
			t.Errorf("%s: %d embeddings before export, %d after", name, len(orig), len(re))
		}
	}
}
