package kb

import (
	"io"

	"semfeed/internal/pattern"
)

// ExportJSON writes the whole pattern catalog as a JSON array, the
// publicly-available knowledge-base artifact of the paper. The output
// round-trips through pattern.ReadAll.
func ExportJSON(w io.Writer) error {
	var srcs []*pattern.Pattern
	for _, name := range Names() {
		srcs = append(srcs, Pattern(name).Source)
	}
	return pattern.WriteAll(w, srcs)
}
