# Standard development entry points. Everything is stdlib-only Go; no
# external dependencies or network access required.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-server table table-json metrics-smoke metrics-lint server-smoke cluster-smoke statusz-smoke javalint-smoke fuzz fmt vet examples clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep: Table I columns T and M, the Section VI-C
# comparisons, and the construction ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Cheap CI guard for the perf-critical paths: compile and run the matcher
# and batch-grading benchmarks once (-benchtime=1x), so benchmark rot and
# gross regressions (panics, step-limit blowups) surface on every push
# without the cost of a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkMatcher|BenchmarkMatcherColdGraphs' -benchtime=1x ./internal/match/
	$(GO) test -run '^$$' -bench 'BenchmarkGradeAll' -benchtime=1x ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkInterpCompiled|BenchmarkInterpTreeWalk' -benchtime=1x .

# Regenerate Table I (sampled; raise -n for tighter D estimates).
table:
	$(GO) run ./cmd/tableone -n 1000

# Machine-readable Table I sweep (T, M, D plus matcher work counters) for
# tracking the perf trajectory across PRs.
table-json:
	$(GO) run ./cmd/tableone -n 200 -json

# Observability smoke: grade a reference submission with tracing and the
# metrics dump on, and assert the span tree and the Prometheus exposition
# are both non-empty.
metrics-smoke:
	@out=$$($(GO) run ./cmd/feedback -assignment assignment1 -reference -trace -metrics-dump 2>&1); \
	echo "$$out" | grep -q 'semfeed_grades_total{assignment="assignment1",status="ok"} 1' || { echo "metrics-smoke FAIL: no labeled grade counter"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q 'semfeed_phase_ns{assignment="assignment1",phase="parse"}' || { echo "metrics-smoke FAIL: no per-phase cost attribution"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "grade/assignment1" || { echo "metrics-smoke FAIL: no span tree"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "match:" || { echo "metrics-smoke FAIL: no per-pattern match spans"; echo "$$out"; exit 1; }; \
	echo "metrics-smoke: OK"

# Metrics-reference lint: the generated table embedded in the README must
# match the live registry in both directions. See scripts/metrics_lint.sh.
metrics-lint:
	bash scripts/metrics_lint.sh

# Grading-service smoke: fixture KB via kbdump, semfeedd over HTTP with JSON
# logs + tracing + pprof, request-ID/trace/statusz correlation checks, SIGTERM
# drain. See scripts/server_smoke.sh.
server-smoke:
	bash scripts/server_smoke.sh

# Cluster smoke: coordinator + 2 worker processes with disk stores, graded
# through the coordinator; asserts stable routing (store hit on resubmit),
# cross-process trace correlation under one request ID, zero 5xx after a
# worker is SIGKILLed mid-run, and reroute/worker-gauge accounting. See
# scripts/cluster_smoke.sh.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# SLO-window smoke: burst of grades, then assert /statusz and the
# semfeed_slo_* gauges report non-zero sliding-window traffic and latency.
# Runs the metrics-reference lint first, so doc drift fails fast.
statusz-smoke: metrics-lint
	bash scripts/statusz_smoke.sh

# Static-analyzer smoke: the clean fixture must lint silently with exit 0,
# the buggy one must produce findings and exit nonzero.
javalint-smoke:
	@$(GO) run ./cmd/javalint examples/javalint/Clean.java || { echo "javalint-smoke FAIL: clean fixture flagged"; exit 1; }
	@if $(GO) run ./cmd/javalint examples/javalint/Buggy.java > /tmp/javalint-smoke.out 2>&1; then \
		echo "javalint-smoke FAIL: buggy fixture linted clean"; exit 1; \
	fi
	@grep -q "deadstore" /tmp/javalint-smoke.out || { echo "javalint-smoke FAIL: no deadstore finding"; cat /tmp/javalint-smoke.out; exit 1; }
	@echo "javalint-smoke: OK"

# Closed-loop load test of the grading service (spawns an in-process server)
# and record the percentile summary. The hot phase must show the result-cache
# path well ahead of cold grading. The scaling sweep additionally measures
# cold/hot goodput through an in-process coordinator at 1, 2 and 4 workers
# (see the cpus field: co-located workers time-share this machine's cores).
bench-server:
	$(GO) run ./cmd/loadgen -clients 8 -subs 64 -rounds 3 -scaling 1,2,4 -out BENCH_server.json > /dev/null

fuzz:
	$(GO) test ./internal/java/parser -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/interp -fuzz FuzzRun -fuzztime 30s

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/assignment1
	$(GO) run ./examples/moocbatch -n 200
	$(GO) run ./examples/badpatterns
	$(GO) run ./examples/multimethod
	$(GO) run ./examples/futurework

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
