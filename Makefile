# Standard development entry points. Everything is stdlib-only Go; no
# external dependencies or network access required.

GO ?= go

.PHONY: all build test race bench table fuzz fmt vet examples clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep: Table I columns T and M, the Section VI-C
# comparisons, and the construction ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate Table I (sampled; raise -n for tighter D estimates).
table:
	$(GO) run ./cmd/tableone -n 1000

fuzz:
	$(GO) test ./internal/java/parser -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/interp -fuzz FuzzRun -fuzztime 30s

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/assignment1
	$(GO) run ./examples/moocbatch -n 200
	$(GO) run ./examples/badpatterns
	$(GO) run ./examples/multimethod
	$(GO) run ./examples/futurework

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
