module semfeed

go 1.22
