// Command kbdump exports the knowledge base — the paper's publicly-available
// artifact of 24 unique patterns — as JSON on stdout. The output round-trips
// through pattern.ReadAll, so instructors can edit patterns as data and load
// them back.
//
// Usage:
//
//	kbdump > knowledge_base.json
//	kbdump -list
//	kbdump -dot seq-odd-access | dot -Tpng -o pattern.png
package main

import (
	"flag"
	"fmt"
	"os"

	"semfeed/internal/kb"
)

func main() {
	list := flag.Bool("list", false, "list pattern names and descriptions instead of JSON")
	dot := flag.String("dot", "", "render one pattern as Graphviz DOT (Figures 4-6 style)")
	flag.Parse()

	if *dot != "" {
		for _, name := range kb.Names() {
			if name == *dot {
				fmt.Print(kb.Pattern(name).DOT())
				return
			}
		}
		for _, name := range kb.ExtensionNames() {
			if name == *dot {
				fmt.Print(kb.Extension(name).DOT())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "kbdump: unknown pattern %q\n", *dot)
		os.Exit(2)
	}

	if *list {
		for _, name := range kb.Names() {
			p := kb.Pattern(name)
			fmt.Printf("%-24s %s\n", name, p.Source.Description)
		}
		fmt.Println("-- extensions (Section VII future work) --")
		for _, name := range kb.ExtensionNames() {
			p := kb.Extension(name)
			fmt.Printf("%-24s %s\n", name, p.Source.Description)
		}
		return
	}
	if err := kb.ExportJSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "kbdump: %v\n", err)
		os.Exit(1)
	}
}
