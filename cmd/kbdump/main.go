// Command kbdump exports the knowledge base — the paper's publicly-available
// artifact of 24 unique patterns — as JSON on stdout. The output round-trips
// through pattern.ReadAll, so instructors can edit patterns as data and load
// them back.
//
// Usage:
//
//	kbdump > knowledge_base.json
//	kbdump -list
//	kbdump -dot seq-odd-access | dot -Tpng -o pattern.png
//	kbdump -assignment assignment1 > kbdir/assignment1.json   # semfeedd KB file
package main

import (
	"flag"
	"fmt"
	"os"

	"semfeed/internal/assignments"
	"semfeed/internal/kb"
)

func main() {
	list := flag.Bool("list", false, "list pattern names and descriptions instead of JSON")
	dot := flag.String("dot", "", "render one pattern as Graphviz DOT (Figures 4-6 style)")
	assignment := flag.String("assignment", "", "export one built-in assignment as a semfeedd definition file")
	flag.Parse()

	// A built-in assignment exported this way round-trips through
	// kb.ReadAssignmentDef, so it serves as a seed or fixture for the grading
	// service's hot-reload directory.
	if *assignment != "" {
		a := assignments.Get(*assignment)
		if a == nil {
			fmt.Fprintf(os.Stderr, "kbdump: unknown assignment %q\n", *assignment)
			os.Exit(2)
		}
		def := kb.ExportAssignmentDef(a.ID, a.Description, a.Spec)
		if err := kb.WriteAssignmentDef(os.Stdout, def); err != nil {
			fmt.Fprintf(os.Stderr, "kbdump: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *dot != "" {
		for _, name := range kb.Names() {
			if name == *dot {
				fmt.Print(kb.Pattern(name).DOT())
				return
			}
		}
		for _, name := range kb.ExtensionNames() {
			if name == *dot {
				fmt.Print(kb.Extension(name).DOT())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "kbdump: unknown pattern %q\n", *dot)
		os.Exit(2)
	}

	if *list {
		for _, name := range kb.Names() {
			p := kb.Pattern(name)
			fmt.Printf("%-24s %s\n", name, p.Source.Description)
		}
		fmt.Println("-- extensions (Section VII future work) --")
		for _, name := range kb.ExtensionNames() {
			p := kb.Extension(name)
			fmt.Printf("%-24s %s\n", name, p.Source.Description)
		}
		return
	}
	if err := kb.ExportJSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "kbdump: %v\n", err)
		os.Exit(1)
	}
}
