// Command loadgen is a closed-loop load generator for the grading service:
// each of -clients workers keeps exactly one request in flight, so measured
// latency reflects service time plus queueing, not coordinated omission.
//
// The run has two phases over the same submission set (distinct synthesized
// variants of -assignment):
//
//	cold — every submission is new, so every request takes the full grading
//	       path (parse → EPDG → Algorithm 1/2 → constraints);
//	hot  — the same submissions are resubmitted and served from the result
//	       cache, the dominant MOOC resubmission pattern.
//
// Both phases report p50/p95/p99 latency and throughput; the summary JSON
// (written to -out) records the cold:hot speedup, the number the result
// cache exists to deliver.
//
// Usage:
//
//	loadgen -addr localhost:8080
//	loadgen -clients 8 -subs 64 -rounds 4 -out BENCH_server.json
//	loadgen                       # no -addr: spawns an in-process server
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"semfeed/internal/assignments"
	"semfeed/internal/server"
)

type phaseStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	CacheHit int     `json:"cache_hits"`
	WallS    float64 `json:"wall_seconds"`
	RPS      float64 `json:"rps"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MeanMS   float64 `json:"mean_ms"`
}

type benchOut struct {
	Assignment string     `json:"assignment"`
	Clients    int        `json:"clients"`
	Subs       int        `json:"submissions"`
	Rounds     int        `json:"rounds"`
	Cold       phaseStats `json:"cold"`
	Hot        phaseStats `json:"hot"`
	Speedup    float64    `json:"hot_speedup_p50"`
}

func main() {
	var (
		addr       = flag.String("addr", "", "server address (host:port); empty spawns an in-process server")
		assignment = flag.String("assignment", "assignment1", "assignment ID to grade against")
		clients    = flag.Int("clients", 8, "concurrent closed-loop clients")
		subs       = flag.Int("subs", 64, "distinct synthesized submissions")
		rounds     = flag.Int("rounds", 3, "hot-phase resubmission rounds")
		out        = flag.String("out", "", "write the JSON summary to this file as well as stdout")
	)
	flag.Parse()

	a := assignments.Get(*assignment)
	if a == nil {
		fmt.Fprintf(os.Stderr, "loadgen: unknown assignment %q\n", *assignment)
		os.Exit(2)
	}

	base := *addr
	if base == "" {
		reg := server.NewRegistry("", nil)
		reg.AddBuiltin(a.ID, a.Spec)
		if err := reg.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		srv := server.New(server.Config{Registry: reg})
		if _, err := srv.Start("127.0.0.1:0"); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		base = srv.Addr()
		fmt.Fprintf(os.Stderr, "loadgen: in-process server on %s\n", base)
	}
	url := "http://" + base + "/v1/grade"

	// Distinct variants from the assignment's synthesis space, so the cold
	// phase cannot accidentally hit the cache.
	sources := make([]string, 0, *subs)
	for _, k := range a.Synth.Sample(*subs) {
		sources = append(sources, a.Synth.Render(k))
	}

	// One keep-alive connection per closed-loop client; the default
	// MaxIdleConnsPerHost (2) would make most measurements pay connection
	// setup instead of service time.
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *clients,
			MaxIdleConnsPerHost: *clients,
		},
	}
	res := benchOut{Assignment: a.ID, Clients: *clients, Subs: len(sources), Rounds: *rounds}
	res.Cold = runPhase(client, url, a.ID, sources, *clients, 1)
	res.Hot = runPhase(client, url, a.ID, sources, *clients, *rounds)
	if res.Hot.P50MS > 0 {
		res.Speedup = res.Cold.P50MS / res.Hot.P50MS
	}

	fmt.Fprintf(os.Stderr, "cold: %d reqs  p50 %.2fms  p95 %.2fms  p99 %.2fms  %.0f rps\n",
		res.Cold.Requests, res.Cold.P50MS, res.Cold.P95MS, res.Cold.P99MS, res.Cold.RPS)
	fmt.Fprintf(os.Stderr, "hot:  %d reqs  p50 %.2fms  p95 %.2fms  p99 %.2fms  %.0f rps  (%d/%d cached)\n",
		res.Hot.Requests, res.Hot.P50MS, res.Hot.P95MS, res.Hot.P99MS, res.Hot.RPS, res.Hot.CacheHit, res.Hot.Requests)
	fmt.Fprintf(os.Stderr, "hot p50 speedup: %.1fx\n", res.Speedup)

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if res.Cold.Errors > 0 || res.Hot.Errors > 0 {
		os.Exit(1)
	}
}

// runPhase pushes rounds×len(sources) requests through the closed loop and
// aggregates latency.
func runPhase(client *http.Client, url, assignment string, sources []string, clients, rounds int) phaseStats {
	// Request bodies are marshaled once up front so the measured latency is
	// the request, not client-side encoding.
	bodies := make([][]byte, len(sources))
	for i, src := range sources {
		bodies[i], _ = json.Marshal(server.GradeRequest{Assignment: assignment, Source: src})
	}
	jobs := make(chan []byte)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		stats     phaseStats
	)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range jobs {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				elapsed := time.Since(t0)
				mu.Lock()
				stats.Requests++
				if err != nil {
					stats.Errors++
					mu.Unlock()
					continue
				}
				var gr server.GradeResponse
				decErr := json.NewDecoder(resp.Body).Decode(&gr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					stats.Errors++
				} else {
					latencies = append(latencies, elapsed)
					if gr.Cached {
						stats.CacheHit++
					}
				}
				mu.Unlock()
			}
		}()
	}

	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for _, body := range bodies {
			jobs <- body
		}
	}
	close(jobs)
	wg.Wait()
	stats.WallS = time.Since(t0).Seconds()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		pct := func(p float64) float64 {
			idx := int(p * float64(n-1))
			return float64(latencies[idx].Microseconds()) / 1000
		}
		stats.P50MS = pct(0.50)
		stats.P95MS = pct(0.95)
		stats.P99MS = pct(0.99)
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		stats.MeanMS = float64(sum.Microseconds()) / 1000 / float64(n)
	}
	if stats.WallS > 0 {
		stats.RPS = float64(stats.Requests-stats.Errors) / stats.WallS
	}
	return stats
}
