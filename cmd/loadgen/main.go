// Command loadgen is a closed-loop load generator for the grading service:
// each of -clients workers keeps exactly one request in flight, so measured
// latency reflects service time plus queueing, not coordinated omission.
//
// The run has two phases over the same submission set (distinct synthesized
// variants of -assignment):
//
//	cold — every submission is new, so every request takes the full grading
//	       path (parse → EPDG → Algorithm 1/2 → constraints);
//	hot  — the same submissions are resubmitted and served from the result
//	       cache, the dominant MOOC resubmission pattern.
//
// Both phases report p50/p95/p99 latency and throughput; the summary JSON
// (written to -out) records the cold:hot speedup, the number the result
// cache exists to deliver.
//
// Usage:
//
//	loadgen -addr localhost:8080
//	loadgen -clients 8 -subs 64 -rounds 4 -out BENCH_server.json
//	loadgen                       # no -addr: spawns an in-process server
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"semfeed/internal/assignments"
	"semfeed/internal/obs"
	"semfeed/internal/server"
)

// classStats is one response class's share of a phase: its request count and
// latency percentiles. Splitting by outcome keeps a shedding or erroring run
// from polluting the success latency distribution (a 429 returns in
// microseconds and would flatter every percentile it is folded into).
type classStats struct {
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

type phaseStats struct {
	Requests int `json:"requests"`
	// Errors counts hard failures: network errors, decode failures, 4xx
	// (other than 429) and 5xx. Sheds (429) are counted separately — load
	// shedding is the admission queue working as designed, not a failure.
	Errors   int     `json:"errors"`
	Sheds    int     `json:"sheds"`
	CacheHit int     `json:"cache_hits"`
	WallS    float64 `json:"wall_seconds"`
	RPS      float64 `json:"rps"`
	// GoodputRPS is successful (2xx) responses per second.
	GoodputRPS float64 `json:"goodput_rps"`
	// Top-level percentiles cover 2xx responses only.
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// ByStatus breaks the phase down per response class ("2xx", "429",
	// "4xx", "5xx", "network") with per-class latency percentiles.
	ByStatus map[string]classStats `json:"by_status,omitempty"`
}

type benchOut struct {
	Assignment string     `json:"assignment"`
	Clients    int        `json:"clients"`
	Subs       int        `json:"submissions"`
	Rounds     int        `json:"rounds"`
	Cold       phaseStats `json:"cold"`
	Hot        phaseStats `json:"hot"`
	Speedup    float64    `json:"hot_speedup_p50"`
}

func main() {
	var (
		addr       = flag.String("addr", "", "server address (host:port); empty spawns an in-process server")
		assignment = flag.String("assignment", "assignment1", "assignment ID to grade against")
		clients    = flag.Int("clients", 8, "concurrent closed-loop clients")
		subs       = flag.Int("subs", 64, "distinct synthesized submissions")
		rounds     = flag.Int("rounds", 3, "hot-phase resubmission rounds")
		out        = flag.String("out", "", "write the JSON summary to this file as well as stdout")
		version    = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("loadgen"))
		return
	}

	a := assignments.Get(*assignment)
	if a == nil {
		fmt.Fprintf(os.Stderr, "loadgen: unknown assignment %q\n", *assignment)
		os.Exit(2)
	}

	base := *addr
	if base == "" {
		reg := server.NewRegistry("", nil)
		reg.AddBuiltin(a.ID, a.Spec)
		if err := reg.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		srv := server.New(server.Config{Registry: reg})
		if _, err := srv.Start("127.0.0.1:0"); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		base = srv.Addr()
		fmt.Fprintf(os.Stderr, "loadgen: in-process server on %s\n", base)
	}
	url := "http://" + base + "/v1/grade"

	// Distinct variants from the assignment's synthesis space, so the cold
	// phase cannot accidentally hit the cache.
	sources := make([]string, 0, *subs)
	for _, k := range a.Synth.Sample(*subs) {
		sources = append(sources, a.Synth.Render(k))
	}

	// One keep-alive connection per closed-loop client; the default
	// MaxIdleConnsPerHost (2) would make most measurements pay connection
	// setup instead of service time.
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *clients,
			MaxIdleConnsPerHost: *clients,
		},
	}
	res := benchOut{Assignment: a.ID, Clients: *clients, Subs: len(sources), Rounds: *rounds}
	res.Cold = runPhase(client, url, a.ID, sources, *clients, 1)
	res.Hot = runPhase(client, url, a.ID, sources, *clients, *rounds)
	if res.Hot.P50MS > 0 {
		res.Speedup = res.Cold.P50MS / res.Hot.P50MS
	}

	fmt.Fprintf(os.Stderr, "cold: %d reqs  p50 %.2fms  p95 %.2fms  p99 %.2fms  %.0f rps (%.0f goodput)  %d shed  %d errors\n",
		res.Cold.Requests, res.Cold.P50MS, res.Cold.P95MS, res.Cold.P99MS, res.Cold.RPS, res.Cold.GoodputRPS, res.Cold.Sheds, res.Cold.Errors)
	fmt.Fprintf(os.Stderr, "hot:  %d reqs  p50 %.2fms  p95 %.2fms  p99 %.2fms  %.0f rps (%.0f goodput)  %d shed  %d errors  (%d/%d cached)\n",
		res.Hot.Requests, res.Hot.P50MS, res.Hot.P95MS, res.Hot.P99MS, res.Hot.RPS, res.Hot.GoodputRPS, res.Hot.Sheds, res.Hot.Errors, res.Hot.CacheHit, res.Hot.Requests)
	fmt.Fprintf(os.Stderr, "hot p50 speedup: %.1fx\n", res.Speedup)

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	// Sheds (429) are deliberately not fatal: a loadgen run hot enough to
	// trip admission control is still a valid measurement.
	if res.Cold.Errors > 0 || res.Hot.Errors > 0 {
		os.Exit(1)
	}
}

// runPhase pushes rounds×len(sources) requests through the closed loop and
// aggregates latency.
func runPhase(client *http.Client, url, assignment string, sources []string, clients, rounds int) phaseStats {
	// Request bodies are marshaled once up front so the measured latency is
	// the request, not client-side encoding.
	bodies := make([][]byte, len(sources))
	for i, src := range sources {
		bodies[i], _ = json.Marshal(server.GradeRequest{Assignment: assignment, Source: src})
	}
	jobs := make(chan []byte)
	var (
		mu      sync.Mutex
		byClass = map[string][]time.Duration{}
		stats   phaseStats
	)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range jobs {
				// Mint the request ID client-side: the server adopts a valid
				// X-Request-ID, so a failed request is directly greppable in
				// the server's structured log and /v1/trace/{id}.
				rid := obs.NewRequestID()
				req, reqErr := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				var resp *http.Response
				var err error
				t0 := time.Now()
				if reqErr != nil {
					err = reqErr
				} else {
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set("X-Request-ID", rid)
					resp, err = client.Do(req)
				}
				elapsed := time.Since(t0)
				class := "network"
				cached := false
				if err == nil {
					var gr server.GradeResponse
					decErr := json.NewDecoder(resp.Body).Decode(&gr)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusTooManyRequests:
						class = "429"
					case resp.StatusCode >= 500:
						class = "5xx"
					case resp.StatusCode >= 400:
						class = "4xx"
					case decErr != nil:
						class = "network"
					default:
						class = "2xx"
						cached = gr.Cached
					}
				}
				if class != "2xx" && class != "429" {
					if err != nil {
						fmt.Fprintf(os.Stderr, "loadgen: request failed request_id=%s error=%v\n", rid, err)
					} else {
						fmt.Fprintf(os.Stderr, "loadgen: request failed request_id=%s status=%d\n", rid, resp.StatusCode)
					}
				}
				mu.Lock()
				stats.Requests++
				byClass[class] = append(byClass[class], elapsed)
				switch class {
				case "2xx":
					if cached {
						stats.CacheHit++
					}
				case "429":
					stats.Sheds++
				default:
					stats.Errors++
				}
				mu.Unlock()
			}
		}()
	}

	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for _, body := range bodies {
			jobs <- body
		}
	}
	close(jobs)
	wg.Wait()
	stats.WallS = time.Since(t0).Seconds()

	stats.ByStatus = map[string]classStats{}
	for class, lats := range byClass {
		stats.ByStatus[class] = summarize(lats)
	}
	if ok := stats.ByStatus["2xx"]; ok.Count > 0 {
		stats.P50MS, stats.P95MS, stats.P99MS, stats.MeanMS = ok.P50MS, ok.P95MS, ok.P99MS, ok.MeanMS
	}
	if stats.WallS > 0 {
		stats.RPS = float64(stats.Requests) / stats.WallS
		stats.GoodputRPS = float64(stats.ByStatus["2xx"].Count) / stats.WallS
	}
	return stats
}

// summarize sorts one class's latencies and extracts count + percentiles.
func summarize(lats []time.Duration) classStats {
	cs := classStats{Count: len(lats)}
	if cs.Count == 0 {
		return cs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(cs.Count-1))
		return float64(lats[idx].Microseconds()) / 1000
	}
	cs.P50MS = pct(0.50)
	cs.P95MS = pct(0.95)
	cs.P99MS = pct(0.99)
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	cs.MeanMS = float64(sum.Microseconds()) / 1000 / float64(cs.Count)
	return cs
}
