// Command loadgen is a closed-loop load generator for the grading service:
// each of -clients workers keeps exactly one request in flight, so measured
// latency reflects service time plus queueing, not coordinated omission.
//
// The run has two phases over the same submission set (distinct synthesized
// variants of -assignment):
//
//	cold — every submission is new, so every request takes the full grading
//	       path (parse → EPDG → Algorithm 1/2 → constraints);
//	hot  — the same submissions are resubmitted and served from the result
//	       cache, the dominant MOOC resubmission pattern.
//
// Both phases report p50/p95/p99 latency and throughput; the summary JSON
// (written to -out) records the cold:hot speedup, the number the result
// cache exists to deliver.
//
// Usage:
//
//	loadgen -addr localhost:8080
//	loadgen -targets host1:8080,host2:8080     # round-robin over endpoints
//	loadgen -clients 8 -subs 64 -rounds 4 -out BENCH_server.json
//	loadgen -scaling 1,2,4                     # in-process cluster scaling sweep
//	loadgen                                    # no -addr: spawns an in-process server
//
// With -scaling, after the standalone cold/hot run the generator spins up an
// in-process coordinator + N-worker cluster per listed N and measures the
// same two phases through the coordinator, recording goodput and p99 per
// cluster size. The summary carries the machine's CPU count: on a box with
// fewer cores than workers the workers time-share, so wall-clock scaling
// there is a lower bound, not the dedicated-hardware number.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semfeed/internal/assignments"
	"semfeed/internal/bench"
	"semfeed/internal/obs"
	"semfeed/internal/server"
)

// classStats is one response class's share of a phase: its request count and
// latency percentiles. Splitting by outcome keeps a shedding or erroring run
// from polluting the success latency distribution (a 429 returns in
// microseconds and would flatter every percentile it is folded into).
type classStats struct {
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

type phaseStats struct {
	Requests int `json:"requests"`
	// Errors counts hard failures: network errors, decode failures, 4xx
	// (other than 429) and 5xx. Sheds (429) are counted separately — load
	// shedding is the admission queue working as designed, not a failure.
	Errors   int     `json:"errors"`
	Sheds    int     `json:"sheds"`
	CacheHit int     `json:"cache_hits"`
	WallS    float64 `json:"wall_seconds"`
	RPS      float64 `json:"rps"`
	// GoodputRPS is successful (2xx) responses per second.
	GoodputRPS float64 `json:"goodput_rps"`
	// Top-level percentiles cover 2xx responses only.
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// ByStatus breaks the phase down per response class ("2xx", "429",
	// "4xx", "5xx", "network") with per-class latency percentiles.
	ByStatus map[string]classStats `json:"by_status,omitempty"`
}

// scalingRow is one cluster size's measurement from the -scaling sweep.
type scalingRow struct {
	Workers int `json:"workers"`
	// Clients is the closed-loop client count used for this row (scaled with
	// the worker count so offered concurrency grows with capacity).
	Clients        int     `json:"clients"`
	ColdGoodputRPS float64 `json:"cold_goodput_rps"`
	ColdP99MS      float64 `json:"cold_p99_ms"`
	HotGoodputRPS  float64 `json:"hot_goodput_rps"`
	HotP99MS       float64 `json:"hot_p99_ms"`
	Errors         int     `json:"errors"`
	// ColdScaleVs1 / HotScaleVs1 are this row's goodput over the N=1 row's
	// (only meaningful when the sweep includes 1).
	ColdScaleVs1 float64 `json:"cold_scale_vs_1,omitempty"`
	HotScaleVs1  float64 `json:"hot_scale_vs_1,omitempty"`
}

type benchOut struct {
	Assignment string     `json:"assignment"`
	Clients    int        `json:"clients"`
	Subs       int        `json:"submissions"`
	Rounds     int        `json:"rounds"`
	Cold       phaseStats `json:"cold"`
	Hot        phaseStats `json:"hot"`
	Speedup    float64    `json:"hot_speedup_p50"`
	// CPUs is runtime.NumCPU() on the measuring machine. The scaling rows
	// run all workers in one process, so with CPUs < workers the rows
	// measure time-shared workers — a lower bound on dedicated-hardware
	// scaling.
	CPUs    int          `json:"cpus,omitempty"`
	Scaling []scalingRow `json:"scaling,omitempty"`
}

func main() {
	var (
		addr       = flag.String("addr", "", "server address (host:port); empty spawns an in-process server")
		targets    = flag.String("targets", "", "comma-separated server endpoints to round-robin over (overrides -addr; host:port or full URLs)")
		scaling    = flag.String("scaling", "", `comma-separated cluster sizes to sweep with in-process coordinator+workers, e.g. "1,2,4" (empty disables)`)
		assignment = flag.String("assignment", "assignment1", "assignment ID to grade against")
		clients    = flag.Int("clients", 8, "concurrent closed-loop clients")
		subs       = flag.Int("subs", 64, "distinct synthesized submissions")
		rounds     = flag.Int("rounds", 3, "hot-phase resubmission rounds")
		out        = flag.String("out", "", "write the JSON summary to this file as well as stdout")
		version    = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("loadgen"))
		return
	}

	a := assignments.Get(*assignment)
	if a == nil {
		fmt.Fprintf(os.Stderr, "loadgen: unknown assignment %q\n", *assignment)
		os.Exit(2)
	}

	var urls []string
	switch {
	case *targets != "":
		for _, tgt := range strings.Split(*targets, ",") {
			if tgt = strings.TrimSpace(tgt); tgt != "" {
				urls = append(urls, gradeURL(tgt))
			}
		}
		if len(urls) == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -targets parsed to nothing")
			os.Exit(2)
		}
	case *addr != "":
		urls = []string{gradeURL(*addr)}
	default:
		reg := server.NewRegistry("", nil)
		reg.AddBuiltin(a.ID, a.Spec)
		if err := reg.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		srv := server.New(server.Config{Registry: reg})
		if _, err := srv.Start("127.0.0.1:0"); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		urls = []string{gradeURL(srv.Addr())}
		fmt.Fprintf(os.Stderr, "loadgen: in-process server on %s\n", srv.Addr())
	}

	// Distinct variants from the assignment's synthesis space, so the cold
	// phase cannot accidentally hit the cache.
	sources := make([]string, 0, *subs)
	for _, k := range a.Synth.Sample(*subs) {
		sources = append(sources, a.Synth.Render(k))
	}

	res := benchOut{Assignment: a.ID, Clients: *clients, Subs: len(sources), Rounds: *rounds, CPUs: runtime.NumCPU()}
	client := newClient(*clients)
	res.Cold = runPhase(client, urls, a.ID, sources, *clients, 1)
	res.Hot = runPhase(client, urls, a.ID, sources, *clients, *rounds)
	if res.Hot.P50MS > 0 {
		res.Speedup = res.Cold.P50MS / res.Hot.P50MS
	}

	fmt.Fprintf(os.Stderr, "cold: %d reqs  p50 %.2fms  p95 %.2fms  p99 %.2fms  %.0f rps (%.0f goodput)  %d shed  %d errors\n",
		res.Cold.Requests, res.Cold.P50MS, res.Cold.P95MS, res.Cold.P99MS, res.Cold.RPS, res.Cold.GoodputRPS, res.Cold.Sheds, res.Cold.Errors)
	fmt.Fprintf(os.Stderr, "hot:  %d reqs  p50 %.2fms  p95 %.2fms  p99 %.2fms  %.0f rps (%.0f goodput)  %d shed  %d errors  (%d/%d cached)\n",
		res.Hot.Requests, res.Hot.P50MS, res.Hot.P95MS, res.Hot.P99MS, res.Hot.RPS, res.Hot.GoodputRPS, res.Hot.Sheds, res.Hot.Errors, res.Hot.CacheHit, res.Hot.Requests)
	fmt.Fprintf(os.Stderr, "hot p50 speedup: %.1fx\n", res.Speedup)

	if *scaling != "" {
		rows, err := runScalingSweep(a, *scaling, sources, *clients, *rounds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: scaling sweep: %v\n", err)
			os.Exit(1)
		}
		res.Scaling = rows
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	// Sheds (429) are deliberately not fatal: a loadgen run hot enough to
	// trip admission control is still a valid measurement.
	errors := res.Cold.Errors + res.Hot.Errors
	for _, row := range res.Scaling {
		errors += row.Errors
	}
	if errors > 0 {
		os.Exit(1)
	}
}

// gradeURL normalizes a target (host:port or URL) to its /v1/grade endpoint.
func gradeURL(target string) string {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	return strings.TrimSuffix(target, "/") + "/v1/grade"
}

// newClient builds the shared HTTP client: one keep-alive connection per
// closed-loop client; the default MaxIdleConnsPerHost (2) would make most
// measurements pay connection setup instead of service time.
func newClient(clients int) *http.Client {
	return &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        clients,
			MaxIdleConnsPerHost: clients,
		},
	}
}

// runScalingSweep measures cold and hot phases through an in-process
// coordinator at each listed cluster size. Clients scale with the worker
// count so offered concurrency grows with nominal capacity.
func runScalingSweep(a *assignments.Assignment, sizes string, sources []string, baseClients, rounds int) ([]scalingRow, error) {
	var rows []scalingRow
	for _, tok := range strings.Split(sizes, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -scaling element %q", tok)
		}
		h, err := bench.SpawnCluster(a, n)
		if err != nil {
			return nil, err
		}
		nClients := baseClients * n
		urls := []string{gradeURL(h.CoordAddr)}
		client := newClient(nClients)
		cold := runPhase(client, urls, a.ID, sources, nClients, 1)
		hot := runPhase(client, urls, a.ID, sources, nClients, rounds)
		h.Close()
		row := scalingRow{
			Workers:        n,
			Clients:        nClients,
			ColdGoodputRPS: cold.GoodputRPS,
			ColdP99MS:      cold.P99MS,
			HotGoodputRPS:  hot.GoodputRPS,
			HotP99MS:       hot.P99MS,
			Errors:         cold.Errors + hot.Errors,
		}
		rows = append(rows, row)
		fmt.Fprintf(os.Stderr, "scaling n=%d: cold %.0f goodput rps (p99 %.2fms)  hot %.0f goodput rps (p99 %.2fms)  %d errors\n",
			n, row.ColdGoodputRPS, row.ColdP99MS, row.HotGoodputRPS, row.HotP99MS, row.Errors)
	}
	for i := range rows {
		if rows[0].Workers == 1 && rows[0].ColdGoodputRPS > 0 {
			rows[i].ColdScaleVs1 = rows[i].ColdGoodputRPS / rows[0].ColdGoodputRPS
		}
		if rows[0].Workers == 1 && rows[0].HotGoodputRPS > 0 {
			rows[i].HotScaleVs1 = rows[i].HotGoodputRPS / rows[0].HotGoodputRPS
		}
	}
	return rows, nil
}

// runPhase pushes rounds×len(sources) requests through the closed loop,
// round-robining over urls, and aggregates latency.
func runPhase(client *http.Client, urls []string, assignment string, sources []string, clients, rounds int) phaseStats {
	// Request bodies are marshaled once up front so the measured latency is
	// the request, not client-side encoding.
	bodies := make([][]byte, len(sources))
	for i, src := range sources {
		bodies[i], _ = json.Marshal(server.GradeRequest{Assignment: assignment, Source: src})
	}
	jobs := make(chan []byte)
	var (
		mu      sync.Mutex
		byClass = map[string][]time.Duration{}
		stats   phaseStats
		rr      atomic.Uint64 // round-robin cursor over urls
	)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range jobs {
				url := urls[rr.Add(1)%uint64(len(urls))]
				// Mint the request ID client-side: the server adopts a valid
				// X-Request-ID, so a failed request is directly greppable in
				// the server's structured log and /v1/trace/{id}.
				rid := obs.NewRequestID()
				req, reqErr := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				var resp *http.Response
				var err error
				t0 := time.Now()
				if reqErr != nil {
					err = reqErr
				} else {
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set("X-Request-ID", rid)
					resp, err = client.Do(req)
				}
				elapsed := time.Since(t0)
				class := "network"
				cached := false
				if err == nil {
					var gr server.GradeResponse
					decErr := json.NewDecoder(resp.Body).Decode(&gr)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusTooManyRequests:
						class = "429"
					case resp.StatusCode >= 500:
						class = "5xx"
					case resp.StatusCode >= 400:
						class = "4xx"
					case decErr != nil:
						class = "network"
					default:
						class = "2xx"
						cached = gr.Cached
					}
				}
				if class != "2xx" && class != "429" {
					if err != nil {
						fmt.Fprintf(os.Stderr, "loadgen: request failed request_id=%s error=%v\n", rid, err)
					} else {
						fmt.Fprintf(os.Stderr, "loadgen: request failed request_id=%s status=%d\n", rid, resp.StatusCode)
					}
				}
				mu.Lock()
				stats.Requests++
				byClass[class] = append(byClass[class], elapsed)
				switch class {
				case "2xx":
					if cached {
						stats.CacheHit++
					}
				case "429":
					stats.Sheds++
				default:
					stats.Errors++
				}
				mu.Unlock()
			}
		}()
	}

	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for _, body := range bodies {
			jobs <- body
		}
	}
	close(jobs)
	wg.Wait()
	stats.WallS = time.Since(t0).Seconds()

	stats.ByStatus = map[string]classStats{}
	for class, lats := range byClass {
		stats.ByStatus[class] = summarize(lats)
	}
	if ok := stats.ByStatus["2xx"]; ok.Count > 0 {
		stats.P50MS, stats.P95MS, stats.P99MS, stats.MeanMS = ok.P50MS, ok.P95MS, ok.P99MS, ok.MeanMS
	}
	if stats.WallS > 0 {
		stats.RPS = float64(stats.Requests) / stats.WallS
		stats.GoodputRPS = float64(stats.ByStatus["2xx"].Count) / stats.WallS
	}
	return stats
}

// summarize sorts one class's latencies and extracts count + percentiles.
func summarize(lats []time.Duration) classStats {
	cs := classStats{Count: len(lats)}
	if cs.Count == 0 {
		return cs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(cs.Count-1))
		return float64(lats[idx].Microseconds()) / 1000
	}
	cs.P50MS = pct(0.50)
	cs.P95MS = pct(0.95)
	cs.P99MS = pct(0.99)
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	cs.MeanMS = float64(sum.Microseconds()) / 1000 / float64(cs.Count)
	return cs
}
