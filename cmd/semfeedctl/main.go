// Command semfeedctl is the operator's window into a running cluster: it
// renders the coordinator's fleet observability plane — the per-worker status
// pane, assembled cross-process traces, and the membership flight recorder —
// as terminal output, so an incident does not start with hand-assembling curl
// against every process.
//
// Usage:
//
//	semfeedctl -addr http://127.0.0.1:8080 status      # the fleet pane
//	semfeedctl -addr http://127.0.0.1:8080 trace <id>  # assembled span tree
//	semfeedctl -addr http://127.0.0.1:8080 events      # flight recorder tail
//	semfeedctl status -json                            # raw payload instead
//
// Every subcommand is a thin client over the coordinator's HTTP surface
// (/v1/cluster/statusz, /v1/trace/{id}, /v1/events); pointing -addr at a
// standalone server still works for "trace" (single-process trees).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"semfeed/internal/cluster"
	"semfeed/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "coordinator base URL")
		timeout = flag.Duration("timeout", 10*time.Second, "request deadline")
		rawJSON = flag.Bool("json", false, "print the raw JSON payload instead of rendering")
		tail    = flag.Int("n", 32, "events: how many recent entries to show (0 = all retained)")
		version = flag.Bool("version", false, "print build version and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: semfeedctl [flags] status | trace <id> | events\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("semfeedctl"))
		return
	}

	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*addr, "/")
	var err error
	switch flag.Arg(0) {
	case "status":
		err = runStatus(client, base, *rawJSON)
	case "trace":
		if flag.Arg(1) == "" {
			fail("trace requires a request ID (the X-Request-ID of the grade)")
		}
		err = runTrace(client, base, flag.Arg(1), *rawJSON)
	case "events":
		err = runEvents(client, base, *tail, *rawJSON)
	case "":
		flag.Usage()
		os.Exit(2)
	default:
		fail(fmt.Sprintf("unknown subcommand %q (want status, trace or events)", flag.Arg(0)))
	}
	if err != nil {
		fail(err.Error())
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "semfeedctl:", msg)
	os.Exit(1)
}

// get fetches one endpoint, failing on non-200 with the body as the message.
func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// ---------------------------------------------------------------------------
// status

func runStatus(client *http.Client, base string, raw bool) error {
	body, err := get(client, base+"/v1/cluster/statusz")
	if err != nil {
		return err
	}
	if raw {
		os.Stdout.Write(body)
		return nil
	}
	var cs cluster.ClusterStatusz
	if err := json.Unmarshal(body, &cs); err != nil {
		return fmt.Errorf("decode statusz: %w", err)
	}

	fmt.Printf("coordinator  up %s  build %s  ring gen %d  scrape errors %d\n",
		fmtDur(cs.UptimeSeconds), cs.Build.Revision, cs.RingGeneration, cs.ScrapeErrorsTotal)
	fmt.Printf("workers      %d/%d healthy\n", cs.WorkersHealthy, cs.WorkersConfigured)
	if s, ok := cs.SLO["1m"]; ok && s.Requests > 0 {
		fmt.Printf("slo 1m       %d req  err %.2f%%  p50 %.1fms  p99 %.1fms (client-visible)\n",
			s.Requests, s.ErrorRate*100, s.P50MS, s.P99MS)
	}
	if s, ok := cs.FleetSLO["1m"]; ok && s.Requests > 0 {
		fmt.Printf("fleet 1m     %d req  err %.2f%%  p50 %.1fms  p99 %.1fms (across workers)\n",
			s.Requests, s.ErrorRate*100, s.P50MS, s.P99MS)
	}
	fmt.Println()

	tw := newTable("WORKER", "STATE", "UP", "BUILD", "SHARE", "STORE", "INFLIGHT", "P99(1m)")
	for _, w := range cs.Workers {
		state := "healthy"
		if !w.Healthy {
			state = "DOWN"
		}
		if w.Stale {
			state += " stale"
		}
		p99 := "-"
		if s, ok := w.SLO["1m"]; ok && s.Requests > 0 {
			p99 = fmt.Sprintf("%.1fms", s.P99MS)
		}
		storeCol := fmt.Sprintf("%d/%s", w.StoreEntries, fmtBytes(w.StoreBytes))
		tw.row(w.Worker, state, fmtDur(w.UptimeSeconds), w.Build.Revision,
			fmt.Sprintf("%.0f%%", w.RingShare*100), storeCol,
			fmt.Sprintf("%d", w.GradesInflight), p99)
	}
	tw.flush(os.Stdout)

	if len(cs.RecentEvents) > 0 {
		fmt.Println()
		fmt.Println("recent membership events:")
		n := len(cs.RecentEvents)
		if n > 8 {
			n = 8
		}
		for _, e := range cs.RecentEvents[:n] {
			fmt.Println("  " + fmtEvent(e))
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// trace

func runTrace(client *http.Client, base, id string, raw bool) error {
	u := base + "/v1/trace/" + url.PathEscape(id)
	if raw {
		body, err := get(client, u)
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		return nil
	}
	body, err := get(client, u+"?format=text")
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	return nil
}

// ---------------------------------------------------------------------------
// events

func runEvents(client *http.Client, base string, n int, raw bool) error {
	body, err := get(client, fmt.Sprintf("%s/v1/events?n=%d", base, n))
	if err != nil {
		return err
	}
	if raw {
		os.Stdout.Write(body)
		return nil
	}
	var er cluster.EventsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		return fmt.Errorf("decode events: %w", err)
	}
	kinds := make([]string, 0, len(er.Counts))
	for k := range er.Counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var parts []string
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, er.Counts[k]))
	}
	fmt.Printf("ring gen %d  %s\n", er.RingGeneration, strings.Join(parts, "  "))
	for _, e := range er.Events {
		fmt.Println(fmtEvent(e))
	}
	return nil
}

// fmtEvent renders one flight-recorder entry on one line.
func fmtEvent(e cluster.MemberEvent) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  #%-4d %-12s", e.Time.Format("15:04:05.000"), e.Seq, e.Kind)
	if e.Worker != "" {
		fmt.Fprintf(&sb, " %s", e.Worker)
	}
	if e.Detail != "" {
		fmt.Fprintf(&sb, " (%s)", e.Detail)
	}
	if len(e.Added) > 0 {
		fmt.Fprintf(&sb, " +%s", strings.Join(e.Added, ",+"))
	}
	if len(e.Removed) > 0 {
		fmt.Fprintf(&sb, " -%s", strings.Join(e.Removed, ",-"))
	}
	fmt.Fprintf(&sb, "  gen=%d healthy=%d", e.RingGen, e.Healthy)
	return sb.String()
}

// ---------------------------------------------------------------------------
// rendering helpers

func fmtDur(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.0fs", d.Seconds())
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// table is a minimal column aligner (no tabwriter dependency on format
// quirks; widths computed over the actual rows).
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) row(cols ...string) { t.rows = append(t.rows, cols) }

func (t *table) flush(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		var sb strings.Builder
		for i, c := range cols {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cols)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}
