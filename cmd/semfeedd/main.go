// Command semfeedd is the long-running grading service: the paper's feedback
// engine behind an HTTP JSON API, sized for MOOC-scale traffic. It serves the
// twelve built-in assignments plus any definition files in -kb-dir, which it
// hot-reloads on a poll interval without interrupting in-flight grades.
//
// Usage:
//
//	semfeedd -addr :8080
//	semfeedd -addr :8080 -kb-dir /etc/semfeed/kb -poll 5s
//	semfeedd -addr :8080 -no-builtin -kb-dir ./kb      # file-backed KB only
//	semfeedd -addr :8080 -log-format json -pprof       # production observability
//
// Endpoints:
//
//	POST /v1/grade        grade one submission        {"assignment","id","source"}
//	POST /v1/batch        grade a batch               {"assignment","submissions":[...]}
//	GET  /v1/assignments  list served assignments
//	GET  /v1/trace/{id}   retained trace by request ID (?format=text for the tree)
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 while draining or with no KB)
//	GET  /statusz         rolling SLO windows + runtime state, JSON
//	GET  /metrics         Prometheus exposition (also /metrics.json, /debug/traces)
//	GET  /debug/pprof/    runtime profiles (only with -pprof)
//
// Every response carries X-Request-ID (minted, or adopted from the request);
// the same ID keys the grade's structured log line, its Report.Stats block
// and its /v1/trace/{id} entry.
//
// Overload is shed with 429 + Retry-After once the admission queue is full.
// SIGTERM or SIGINT drains gracefully: readiness flips, the listener closes,
// and in-flight requests complete (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semfeed/internal/analysis"
	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/obs"
	"semfeed/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		kbDir        = flag.String("kb-dir", "", "directory of assignment definition files to serve and hot-reload")
		poll         = flag.Duration("poll", 5*time.Second, "KB directory poll interval")
		noBuiltin    = flag.Bool("no-builtin", false, "serve only -kb-dir definitions, not the built-in assignments")
		queue        = flag.Int("queue", 64, "admission queue depth before requests are shed with 429")
		workers      = flag.Int("workers", 0, "max concurrent grading requests (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request grading deadline")
		cacheSize    = flag.Int("cache", 4096, "result cache capacity in entries (negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
		analyzers    = flag.String("analyzers", "all", `static analyzers run on every submission: "all", "none", or a comma-separated name list (assignment definitions may override per assignment)`)
		logFormat    = flag.String("log-format", "text", `structured log format: "text" or "json"`)
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceOn      = flag.Bool("trace", true, "record per-grade span traces (served at /v1/trace/{id})")
		traceSlow    = flag.Duration("trace-slow", 100*time.Millisecond, "traces at least this slow are always retained")
		traceSample  = flag.Int("trace-sample", 1, "keep 1 in N normal (fast, successful) traces; anomalous ones are always kept")
		traceCap     = flag.Int("trace-cap", 256, "retained trace capacity")
		traceExport  = flag.String("trace-export", "", "JSONL file persisting every completed trace across restarts (empty disables)")
		traceExpMax  = flag.Int64("trace-export-max", 0, "rotate the -trace-export file beyond this many bytes (0 = 64 MiB)")
		version      = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("semfeedd"))
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("bad -log-level", "error", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)
	obs.SetLogger(logger)

	obs.Enable()
	if *traceOn {
		obs.EnableTracing()
		obs.SetSlowTraceThreshold(*traceSlow)
		obs.SetTraceSampling(*traceSample)
		obs.SetTraceCapacity(*traceCap)
	}
	if *traceExport != "" {
		exp, err := obs.NewJSONLExporter(*traceExport, *traceExpMax)
		if err != nil {
			logger.Error("open -trace-export failed", "path", *traceExport, "error", err)
			os.Exit(1)
		}
		obs.SetSpanExporter(exp)
		defer exp.Close()
	}

	var driver *analysis.Driver
	switch *analyzers {
	case "all":
		driver = analysis.DefaultDriver()
	case "none", "":
		driver = nil
	default:
		d, err := analysis.Default().Driver(strings.Split(*analyzers, ","), nil)
		if err != nil {
			logger.Error("bad -analyzers", "error", err)
			os.Exit(2)
		}
		driver = d
	}

	reg := server.NewRegistry(*kbDir, func(format string, args ...any) {
		logger.Info("kb", "detail", fmt.Sprintf(format, args...))
	})
	if !*noBuiltin {
		for _, a := range assignments.All() {
			reg.AddBuiltin(a.ID, a.Spec)
		}
	}
	if err := reg.Load(); err != nil {
		logger.Error("load KB failed", "error", err)
		os.Exit(1)
	}
	if reg.Len() == 0 {
		logger.Error("no assignments to serve (empty -kb-dir and -no-builtin)")
		os.Exit(1)
	}
	if *kbDir != "" {
		reg.Start(*poll)
		defer reg.Stop()
	}

	srv := server.New(server.Config{
		Registry:       reg,
		GradeOptions:   core.Options{Analyzers: driver},
		MaxConcurrent:  *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheSize:      *cacheSize,
		Logger:         logger,
		EnablePprof:    *pprofOn,
	})
	errc, err := srv.Start(*addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	logger.Info("serving",
		"assignments", reg.Len(),
		"addr", srv.Addr(),
		"revision", obs.GetBuildInfo().Revision,
		"pprof", *pprofOn,
		"tracing", *traceOn,
		"trace_export", *traceExport)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		t0 := time.Now()
		logger.Info("draining", "signal", s.String(), "drain_timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain failed", "error", err)
			os.Exit(1)
		}
		<-errc
		logger.Info("drained cleanly", "duration_ms", float64(time.Since(t0).Microseconds())/1000)
	case err := <-errc:
		if err != nil {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	}
}
