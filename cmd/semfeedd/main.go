// Command semfeedd is the long-running grading service: the paper's feedback
// engine behind an HTTP JSON API, sized for MOOC-scale traffic. It serves the
// twelve built-in assignments plus any definition files in -kb-dir, which it
// hot-reloads on a poll interval without interrupting in-flight grades.
//
// Usage:
//
//	semfeedd -addr :8080
//	semfeedd -addr :8080 -kb-dir /etc/semfeed/kb -poll 5s
//	semfeedd -addr :8080 -no-builtin -kb-dir ./kb      # file-backed KB only
//	semfeedd -addr :8080 -log-format json -pprof       # production observability
//
// Cluster mode (see README "Running a cluster"):
//
//	semfeedd -mode worker -addr :8081 -store disk -store-dir /var/semfeed/w1
//	semfeedd -mode worker -addr :8082 -store disk -store-dir /var/semfeed/w2 \
//	         -self http://127.0.0.1:8082 -peers http://127.0.0.1:8081,http://127.0.0.1:8082
//	semfeedd -mode coordinator -addr :8080 \
//	         -cluster-workers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Endpoints:
//
//	POST /v1/grade        grade one submission        {"assignment","id","source"}
//	POST /v1/batch        grade a batch               {"assignment","submissions":[...]}
//	GET  /v1/assignments  list served assignments
//	GET  /v1/trace/{id}   retained trace by request ID (?format=text for the tree);
//	                      on a coordinator: the assembled cross-process tree —
//	                      every process's fragment stitched under the proxy span
//	GET  /v1/store/{key}  content-addressed result store (workers; peer fill)
//	GET  /v1/cluster/statusz      fleet pane: per-worker health, build, SLOs,
//	                              store occupancy, ring share (coordinator)
//	GET  /v1/cluster/metrics.json federated metrics rollup + per-worker breakdown
//	GET  /v1/events       membership flight recorder (coordinator)
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 while draining, with no KB, or — on a
//	                      coordinator — with zero healthy workers)
//	GET  /statusz         rolling SLO windows + runtime state, JSON
//	GET  /metrics         Prometheus exposition (also /metrics.json, /debug/traces)
//	GET  /debug/pprof/    runtime profiles (only with -pprof)
//
// Every response carries X-Request-ID (minted, or adopted from the request);
// the same ID keys the grade's structured log line, its Report.Stats block
// and its /v1/trace/{id} entry. A coordinator forwards the ID and a W3C
// traceparent to the worker it routes to, so one ID spans the whole cluster.
//
// Overload is shed with 429 + Retry-After once the admission queue is full;
// a coordinator forwards a worker's 429 (and its Retry-After) verbatim.
// SIGTERM or SIGINT drains gracefully: readiness flips, the listener closes,
// and in-flight requests complete (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semfeed/internal/analysis"
	"semfeed/internal/assignments"
	"semfeed/internal/cluster"
	"semfeed/internal/core"
	"semfeed/internal/obs"
	"semfeed/internal/server"
	"semfeed/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		mode         = flag.String("mode", "standalone", `process role: "standalone" (grade directly), "worker" (grade as a cluster member), or "coordinator" (route to -cluster-workers, grade nothing)`)
		kbDir        = flag.String("kb-dir", "", "directory of assignment definition files to serve and hot-reload")
		poll         = flag.Duration("poll", 5*time.Second, "KB directory poll interval")
		noBuiltin    = flag.Bool("no-builtin", false, "serve only -kb-dir definitions, not the built-in assignments")
		queue        = flag.Int("queue", 64, "admission queue depth before requests are shed with 429")
		workers      = flag.Int("workers", 0, "max concurrent grading requests (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request grading deadline")
		cacheSize    = flag.Int("cache", 4096, "memory result-store capacity in entries (negative disables)")
		storeKind    = flag.String("store", "memory", `result store backend: "memory" or "disk"`)
		storeDir     = flag.String("store-dir", "", "disk store directory (required with -store disk)")
		storeMaxMB   = flag.Int64("store-max-mb", 256, "disk store size cap in MiB before LRU eviction")
		self         = flag.String("self", "", "this worker's own base URL, as it appears in -peers")
		peers        = flag.String("peers", "", "comma-separated worker base URLs for ring-aware peer cache fill (requires -self)")
		clusterList  = flag.String("cluster-workers", "", "comma-separated worker base URLs to route to (coordinator mode; required)")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "worker /readyz health-probe period (coordinator mode)")
		vnodes       = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per worker on the routing ring")
		proxyTimeout = flag.Duration("proxy-timeout", 15*time.Second, "one proxied grade attempt's deadline (coordinator mode; keep above the workers' -timeout)")
		shardTimeout = flag.Duration("shard-timeout", 60*time.Second, "one batch shard's deadline (coordinator mode)")
		scrapeTO     = flag.Duration("scrape-timeout", 3*time.Second, "one worker's statusz/metrics scrape or trace fetch deadline (coordinator mode)")
		proxyRetries = flag.Int("proxy-retries", cluster.DefaultReplicas, "extra ring replicas a failed grade is retried on (coordinator mode; 0 disables rerouting)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
		analyzers    = flag.String("analyzers", "all", `static analyzers run on every submission: "all", "none", or a comma-separated name list (assignment definitions may override per assignment)`)
		logFormat    = flag.String("log-format", "text", `structured log format: "text" or "json"`)
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceOn      = flag.Bool("trace", true, "record per-grade span traces (served at /v1/trace/{id})")
		traceSlow    = flag.Duration("trace-slow", 100*time.Millisecond, "traces at least this slow are always retained")
		traceSample  = flag.Int("trace-sample", 1, "keep 1 in N normal (fast, successful) traces; anomalous ones are always kept")
		traceCap     = flag.Int("trace-cap", 256, "retained trace capacity")
		traceExport  = flag.String("trace-export", "", "JSONL file persisting every completed trace across restarts (empty disables)")
		traceExpMax  = flag.Int64("trace-export-max", 0, "rotate the -trace-export file beyond this many bytes (0 = 64 MiB)")
		version      = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("semfeedd"))
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("bad -log-level", "error", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)
	obs.SetLogger(logger)

	obs.Enable()
	if *traceOn {
		obs.EnableTracing()
		obs.SetSlowTraceThreshold(*traceSlow)
		obs.SetTraceSampling(*traceSample)
		obs.SetTraceCapacity(*traceCap)
	}
	if *traceExport != "" {
		exp, err := obs.NewJSONLExporter(*traceExport, *traceExpMax)
		if err != nil {
			logger.Error("open -trace-export failed", "path", *traceExport, "error", err)
			os.Exit(1)
		}
		obs.SetSpanExporter(exp)
		defer exp.Close()
	}

	switch *mode {
	case "coordinator":
		if *proxyRetries < 0 {
			logger.Error("bad -proxy-retries: must be >= 0 (0 disables rerouting)")
			os.Exit(2)
		}
		runCoordinator(logger, coordinatorFlags{
			addr:         *addr,
			workers:      splitList(*clusterList),
			probeEvery:   *probeEvery,
			vnodes:       *vnodes,
			proxyTimeout: *proxyTimeout,
			shardTimeout: *shardTimeout,
			scrapeTO:     *scrapeTO,
			retries:      *proxyRetries,
			drainTimeout: *drainTimeout,
		})
		return
	case "standalone", "worker":
		// Identical serving paths; "worker" only documents intent (and is what
		// cluster_smoke.sh and the README examples use). Both accept -peers.
	default:
		logger.Error(`bad -mode: want "standalone", "worker" or "coordinator"`, "mode", *mode)
		os.Exit(2)
	}

	var driver *analysis.Driver
	switch *analyzers {
	case "all":
		driver = analysis.DefaultDriver()
	case "none", "":
		driver = nil
	default:
		d, err := analysis.Default().Driver(strings.Split(*analyzers, ","), nil)
		if err != nil {
			logger.Error("bad -analyzers", "error", err)
			os.Exit(2)
		}
		driver = d
	}

	reg := server.NewRegistry(*kbDir, func(format string, args ...any) {
		logger.Info("kb", "detail", fmt.Sprintf(format, args...))
	})
	if !*noBuiltin {
		for _, a := range assignments.All() {
			reg.AddBuiltin(a.ID, a.Spec)
		}
	}
	if err := reg.Load(); err != nil {
		logger.Error("load KB failed", "error", err)
		os.Exit(1)
	}
	if reg.Len() == 0 {
		logger.Error("no assignments to serve (empty -kb-dir and -no-builtin)")
		os.Exit(1)
	}
	if *kbDir != "" {
		reg.Start(*poll)
		defer reg.Stop()
	}

	resultStore, err := buildStore(logger, reg, *storeKind, *storeDir, *storeMaxMB, *cacheSize)
	if err != nil {
		logger.Error("result store setup failed", "error", err)
		os.Exit(2)
	}
	if peerList := splitList(*peers); len(peerList) > 0 && resultStore != nil {
		if *self == "" {
			logger.Error("-peers requires -self (this worker's own base URL)")
			os.Exit(2)
		}
		resultStore = cluster.NewPeerFill(resultStore, *self, peerList, *vnodes, nil)
		logger.Info("peer fill enabled", "self", *self, "peers", len(peerList))
	}

	srv := server.New(server.Config{
		Registry:       reg,
		GradeOptions:   core.Options{Analyzers: driver},
		MaxConcurrent:  *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Store:          resultStore,
		Logger:         logger,
		EnablePprof:    *pprofOn,
	})
	errc, err := srv.Start(*addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	logger.Info("serving",
		"mode", *mode,
		"assignments", reg.Len(),
		"addr", srv.Addr(),
		"store", *storeKind,
		"revision", obs.GetBuildInfo().Revision,
		"pprof", *pprofOn,
		"tracing", *traceOn,
		"trace_export", *traceExport)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		t0 := time.Now()
		logger.Info("draining", "signal", s.String(), "drain_timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain failed", "error", err)
			os.Exit(1)
		}
		<-errc
		logger.Info("drained cleanly", "duration_ms", float64(time.Since(t0).Microseconds())/1000)
	case err := <-errc:
		if err != nil {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	}
}

// buildStore constructs the grading server's result store. A disk store is
// validated against the loaded registry on startup: entries whose KB version
// no longer matches the live assignment are evicted before serving begins, so
// a KB rolled forward while the process was down cannot resurface stale
// feedback.
func buildStore(logger *slog.Logger, reg *server.Registry, kind, dir string, maxMB int64, cacheSize int) (store.Store, error) {
	switch kind {
	case "memory":
		if cacheSize <= 0 {
			return nil, nil
		}
		return store.NewMemory(cacheSize), nil
	case "disk":
		if dir == "" {
			return nil, fmt.Errorf(`-store disk requires -store-dir`)
		}
		d, err := store.NewDisk(dir, maxMB<<20)
		if err != nil {
			return nil, err
		}
		evicted := d.Validate(func(assignment, kbVersion string) bool {
			e := reg.Get(assignment)
			return e != nil && e.Version == kbVersion
		})
		logger.Info("disk store opened",
			"dir", dir,
			"entries", d.Len(),
			"stale_evicted", evicted)
		return d, nil
	default:
		return nil, fmt.Errorf(`bad -store %q: want "memory" or "disk"`, kind)
	}
}

type coordinatorFlags struct {
	addr         string
	workers      []string
	probeEvery   time.Duration
	vnodes       int
	proxyTimeout time.Duration
	shardTimeout time.Duration
	scrapeTO     time.Duration
	retries      int
	drainTimeout time.Duration
}

func runCoordinator(logger *slog.Logger, cf coordinatorFlags) {
	if len(cf.workers) == 0 {
		logger.Error("-mode coordinator requires -cluster-workers")
		os.Exit(2)
	}
	coord := cluster.New(cluster.Config{
		Workers:       cf.workers,
		VNodes:        cf.vnodes,
		ProbeInterval: cf.probeEvery,
		ProxyTimeout:  cf.proxyTimeout,
		ShardTimeout:  cf.shardTimeout,
		ScrapeTimeout: cf.scrapeTO,
		Replicas:      cf.retries,
		Logger:        logger,
	})
	errc, err := coord.Start(cf.addr)
	if err != nil {
		logger.Error("listen failed", "addr", cf.addr, "error", err)
		os.Exit(1)
	}
	logger.Info("serving",
		"mode", "coordinator",
		"addr", coord.Addr(),
		"workers", len(cf.workers),
		"revision", obs.GetBuildInfo().Revision)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		t0 := time.Now()
		logger.Info("draining", "signal", s.String(), "drain_timeout", cf.drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), cf.drainTimeout)
		defer cancel()
		if err := coord.Shutdown(ctx); err != nil {
			logger.Error("drain failed", "error", err)
			os.Exit(1)
		}
		<-errc
		logger.Info("drained cleanly", "duration_ms", float64(time.Since(t0).Microseconds())/1000)
	case err := <-errc:
		if err != nil {
			logger.Error("serve failed", "error", err)
			os.Exit(1)
		}
	}
}

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
