// Command semfeedd is the long-running grading service: the paper's feedback
// engine behind an HTTP JSON API, sized for MOOC-scale traffic. It serves the
// twelve built-in assignments plus any definition files in -kb-dir, which it
// hot-reloads on a poll interval without interrupting in-flight grades.
//
// Usage:
//
//	semfeedd -addr :8080
//	semfeedd -addr :8080 -kb-dir /etc/semfeed/kb -poll 5s
//	semfeedd -addr :8080 -no-builtin -kb-dir ./kb      # file-backed KB only
//
// Endpoints:
//
//	POST /v1/grade        grade one submission        {"assignment","id","source"}
//	POST /v1/batch        grade a batch               {"assignment","submissions":[...]}
//	GET  /v1/assignments  list served assignments
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 while draining or with no KB)
//	GET  /metrics         Prometheus exposition (also /metrics.json, /debug/traces)
//
// Overload is shed with 429 + Retry-After once the admission queue is full.
// SIGTERM or SIGINT drains gracefully: readiness flips, the listener closes,
// and in-flight requests complete (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"semfeed/internal/analysis"
	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/obs"
	"semfeed/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		kbDir        = flag.String("kb-dir", "", "directory of assignment definition files to serve and hot-reload")
		poll         = flag.Duration("poll", 5*time.Second, "KB directory poll interval")
		noBuiltin    = flag.Bool("no-builtin", false, "serve only -kb-dir definitions, not the built-in assignments")
		queue        = flag.Int("queue", 64, "admission queue depth before requests are shed with 429")
		workers      = flag.Int("workers", 0, "max concurrent grading requests (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request grading deadline")
		cacheSize    = flag.Int("cache", 4096, "result cache capacity in entries (negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
		analyzers    = flag.String("analyzers", "all", `static analyzers run on every submission: "all", "none", or a comma-separated name list (assignment definitions may override per assignment)`)
	)
	flag.Parse()

	logger := log.New(os.Stderr, "semfeedd: ", log.LstdFlags)
	obs.Enable()

	var driver *analysis.Driver
	switch *analyzers {
	case "all":
		driver = analysis.DefaultDriver()
	case "none", "":
		driver = nil
	default:
		d, err := analysis.Default().Driver(strings.Split(*analyzers, ","), nil)
		if err != nil {
			logger.Fatalf("-analyzers: %v", err)
		}
		driver = d
	}

	reg := server.NewRegistry(*kbDir, logger.Printf)
	if !*noBuiltin {
		for _, a := range assignments.All() {
			reg.AddBuiltin(a.ID, a.Spec)
		}
	}
	if err := reg.Load(); err != nil {
		logger.Fatalf("load KB: %v", err)
	}
	if reg.Len() == 0 {
		logger.Fatal("no assignments to serve (empty -kb-dir and -no-builtin)")
	}
	if *kbDir != "" {
		reg.Start(*poll)
		defer reg.Stop()
	}

	srv := server.New(server.Config{
		Registry:       reg,
		GradeOptions:   core.Options{Analyzers: driver},
		MaxConcurrent:  *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheSize:      *cacheSize,
		Logf:           logger.Printf,
	})
	errc, err := srv.Start(*addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving %d assignments on %s", reg.Len(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		logger.Printf("received %v, draining (up to %v)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Fatalf("drain: %v", err)
		}
		<-errc
		logger.Print("drained cleanly")
	case err := <-errc:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
	}
}
