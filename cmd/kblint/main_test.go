package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semfeed/internal/constraint"
	"semfeed/internal/kb"
	"semfeed/internal/pattern"
)

// demoPattern is a minimal valid inline pattern; its node IDs anchor the
// self-constraint fixture below.
func demoPattern(name string) pattern.Pattern {
	return pattern.Pattern{
		Name: name,
		Vars: []string{"x"},
		Nodes: []pattern.Node{
			{ID: "u0", Type: "Assign", Exact: []string{"x = 0"}, Approx: []string{"x ="}},
			{ID: "u1", Type: "Cond", Exact: []string{"x <"}},
		},
		Edges:   []pattern.Edge{{From: "u0", To: "u1", Type: "Data"}},
		Present: "found {x}",
		Missing: "missing",
	}
}

func writeDef(t *testing.T, def *kb.AssignmentDef) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), def.ID+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := kb.WriteAssignmentDef(f, def); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintDefOrphanPattern(t *testing.T) {
	// "ghost" is declared inline but nothing — no pattern use, no group, no
	// constraint — ever names it.
	def := &kb.AssignmentDef{
		ID:       "orphaned",
		Patterns: []pattern.Pattern{demoPattern("ghost")},
		Methods: []kb.MethodDef{{
			Name:     "walk",
			Patterns: []kb.PatternUseDef{{Name: "counter-increment", Count: 1}},
		}},
	}
	path := writeDef(t, def)

	var out bytes.Buffer
	if code := lintDefs(&out, []string{path}); code == 0 {
		t.Fatalf("orphan pattern must exit nonzero\n%s", out.String())
	}
	want := path + `: assignment orphaned: orphan pattern "ghost" is defined but never referenced`
	if !strings.Contains(out.String(), want) {
		t.Errorf("output lacks %q:\n%s", want, out.String())
	}
	if !strings.Contains(out.String(), "1 violation(s)") {
		t.Errorf("violation count missing:\n%s", out.String())
	}
}

func TestLintDefSelfConstraint(t *testing.T) {
	// The constraint relates "demo" to itself: trivially satisfiable, so it
	// can never reject a submission.
	def := &kb.AssignmentDef{
		ID:       "selfref",
		Patterns: []pattern.Pattern{demoPattern("demo")},
		Methods: []kb.MethodDef{{
			Name:     "walk",
			Patterns: []kb.PatternUseDef{{Name: "demo", Count: 1}},
			Constraints: []constraint.Constraint{{
				Name: "same-var",
				Kind: "equality",
				Pi:   "demo", Ui: "u0",
				Pj: "demo", Uj: "u1",
			}},
		}},
	}
	path := writeDef(t, def)

	var out bytes.Buffer
	if code := lintDefs(&out, []string{path}); code == 0 {
		t.Fatalf("self-constraint must exit nonzero\n%s", out.String())
	}
	want := path + `: assignment selfref: method walk: constraint "same-var" relates pattern "demo" to itself`
	if !strings.Contains(out.String(), want) {
		t.Errorf("output lacks %q:\n%s", want, out.String())
	}
}

func TestLintDefCleanStaysClean(t *testing.T) {
	// A definition that uses its inline pattern and relates two distinct
	// patterns lints clean: both rules are quiet and the exit code is 0.
	def := &kb.AssignmentDef{
		ID:       "clean",
		Patterns: []pattern.Pattern{demoPattern("local")},
		Groups: []kb.GroupDef{{
			Name:    "either",
			Missing: "nothing found",
			Members: []string{"local", "counter-increment"},
		}},
		Methods: []kb.MethodDef{{
			Name:   "walk",
			Groups: []kb.GroupUseDef{{Name: "either", Count: 1}},
		}},
	}
	path := writeDef(t, def)

	var out bytes.Buffer
	if code := lintDefs(&out, []string{path}); code != 0 {
		t.Fatalf("clean definition flagged: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), `assignment "clean" ok`) {
		t.Errorf("ok line missing:\n%s", out.String())
	}
}

func TestDefLintsDirect(t *testing.T) {
	// Supporting references keep a pattern alive, and bare containment
	// constraints (empty Pj) are not self-constraints.
	def := &kb.AssignmentDef{
		ID:       "direct",
		Patterns: []pattern.Pattern{demoPattern("aux")},
		Methods: []kb.MethodDef{{
			Name:     "walk",
			Patterns: []kb.PatternUseDef{{Name: "counter-increment", Count: 1}},
			Constraints: []constraint.Constraint{{
				Name: "print-c",
				Kind: "containment",
				Pi:   "counter-increment", Ui: "u0",
				Expr:       "x",
				Supporting: []string{"aux"},
			}},
		}},
	}
	if vs := defLints(def); len(vs) != 0 {
		t.Errorf("unexpected violations: %v", vs)
	}
}
