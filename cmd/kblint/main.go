// Command kblint validates instructor-authored knowledge-base JSON before it
// reaches the grading service. Two file shapes are accepted, distinguished by
// the first JSON token:
//
//   - a pattern list (top-level array, kbdump's output): every pattern must
//     compile (types, templates, edges, the Vars(r̂) ⊆ Vars(r) rule of
//     Definition 4), and optional probe files let authors check that a
//     pattern matches the code they intend;
//   - an assignment definition (top-level object, the files semfeedd
//     hot-reloads): every pattern and group use and every constraint's
//     Pi/Pj/Supporting/node references must resolve against the KB, inline
//     patterns must actually be referenced somewhere (no orphans), and no
//     constraint may relate a pattern to itself. All violations are
//     reported, not just the first, and the exit status is nonzero — so a
//     CI step can gate definition uploads.
//
// Usage:
//
//	kblint patterns.json
//	kblint -probe Good.java -pattern array-sum patterns.json
//	kblint assignment1.json other-assignment.json
//	kbdump | kblint /dev/stdin       # the built-in catalog always lints clean
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"strings"

	"semfeed/internal/java/parser"
	"semfeed/internal/kb"
	"semfeed/internal/match"
	"semfeed/internal/pattern"
	"semfeed/internal/pdg"
)

func main() {
	var (
		probe       = flag.String("probe", "", "Java file to match the patterns against")
		patternName = flag.String("pattern", "", "restrict the probe to one pattern")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: kblint [-probe file.java [-pattern name]] file.json...")
		os.Exit(2)
	}

	// Assignment-definition files (top-level JSON objects) lint through the
	// cross-reference path; several may be named at once.
	if flag.NArg() > 1 || isAssignmentDef(flag.Arg(0)) {
		os.Exit(lintDefs(os.Stdout, flag.Args()))
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	patterns, err := pattern.ReadAll(f)
	if err != nil {
		fatal(err)
	}

	warnings := 0
	for _, p := range patterns {
		for _, n := range p.Nodes {
			// Structural anchors (a bare variable or a wildcard condition)
			// intentionally carry no feedback; only substantive crucial
			// templates deserve a correct-feedback line.
			if n.Crucial() && n.Feedback.Correct == "" && substantive(n.Exact) {
				fmt.Printf("warn: %s/%s is a crucial anchor without correct-feedback text\n", p.Name(), n.ID)
				warnings++
			}
		}
		if p.Source.Present == "" || p.Source.Missing == "" {
			fmt.Printf("warn: %s lacks present/missing feedback\n", p.Name())
			warnings++
		}
		if len(p.Edges) == 0 && len(p.Nodes) > 1 {
			fmt.Printf("warn: %s has %d nodes but no edges — every node combination will be tried\n",
				p.Name(), len(p.Nodes))
			warnings++
		}
	}
	fmt.Printf("%d patterns compile cleanly, %d warnings\n", len(patterns), warnings)

	if *probe == "" {
		return
	}
	src, err := os.ReadFile(*probe)
	if err != nil {
		fatal(err)
	}
	unit, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	graphs := pdg.BuildAll(unit)
	for _, p := range patterns {
		if *patternName != "" && p.Name() != *patternName {
			continue
		}
		for method, g := range graphs {
			embs := match.Find(p, g)
			if len(embs) == 0 {
				continue
			}
			fmt.Printf("%s over %s: %d embedding(s)\n", p.Name(), method, len(embs))
			for i := range embs {
				if err := match.Verify(&embs[i], g); err != nil {
					fmt.Printf("  INVALID: %v\n", err)
					continue
				}
				fmt.Printf("  %s\n", embs[i].String())
			}
		}
	}
}

// isAssignmentDef sniffs the first JSON token: definitions are objects,
// pattern lists are arrays.
func isAssignmentDef(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		b, err := r.ReadByte()
		if err != nil {
			return false
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
}

// lintDefs validates assignment-definition files and reports every violation
// — unknown pattern or group uses, constraints whose Pi/Pj/Supporting name
// patterns absent from the KB, node references that don't exist in their
// pattern, plus the structural rules of defLints. Returns the process exit
// code.
func lintDefs(w io.Writer, paths []string) int {
	violations := 0
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kblint: %v\n", err)
			violations++
			continue
		}
		def, err := kb.ReadAssignmentDef(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", path, err)
			violations++
			continue
		}
		spec, errs := def.Compile()
		for _, e := range errs {
			fmt.Fprintf(w, "%s: %v\n", path, e)
		}
		violations += len(errs)
		structural := defLints(def)
		for _, v := range structural {
			fmt.Fprintf(w, "%s: %s\n", path, v)
		}
		violations += len(structural)
		if spec != nil && len(structural) == 0 {
			fmt.Fprintf(w, "%s: assignment %q ok (%d methods)\n", path, def.ID, len(spec.Methods))
		}
	}
	if violations > 0 {
		fmt.Fprintf(w, "%d violation(s)\n", violations)
		return 1
	}
	return 0
}

// defLints checks the structural rules Compile cannot express as resolution
// failures:
//
//   - orphan pattern: an inline pattern that no method use, group member or
//     constraint reference ever names — dead weight that silently rots as
//     the catalog evolves;
//   - self-constraint: a binary constraint whose pi and pj name the same
//     pattern. Equality is then trivially satisfiable by any single
//     embedding matched against itself and edge existence degenerates the
//     same way, so the constraint never rejects anything.
func defLints(def *kb.AssignmentDef) []string {
	var out []string

	referenced := map[string]bool{}
	for _, g := range def.Groups {
		for _, m := range g.Members {
			referenced[m] = true
		}
	}
	for _, md := range def.Methods {
		for _, pu := range md.Patterns {
			referenced[pu.Name] = true
		}
		for i := range md.Constraints {
			c := &md.Constraints[i]
			referenced[c.Pi] = true
			referenced[c.Pj] = true
			for _, s := range c.Supporting {
				referenced[s] = true
			}
			if c.Pj != "" && c.Pi == c.Pj {
				out = append(out, fmt.Sprintf(
					"assignment %s: method %s: constraint %q relates pattern %q to itself",
					def.ID, md.Name, c.Name, c.Pi))
			}
		}
	}
	for i := range def.Patterns {
		if name := def.Patterns[i].Name; !referenced[name] {
			out = append(out, fmt.Sprintf(
				"assignment %s: orphan pattern %q is defined but never referenced",
				def.ID, name))
		}
	}
	return out
}

// substantive reports whether any exact alternative is a real expression
// fragment (more than one word and not a bare wildcard regex).
func substantive(alts []string) bool {
	for _, a := range alts {
		if strings.HasPrefix(a, "re:.") {
			continue
		}
		if len(strings.Fields(strings.TrimPrefix(a, "re:"))) > 1 {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kblint: %v\n", err)
	os.Exit(1)
}
