// Command kblint validates an instructor-authored JSON pattern file: every
// pattern must compile (types, templates, edges, the Vars(r̂) ⊆ Vars(r) rule
// of Definition 4), and optional probe files let authors check that a
// pattern matches the code they intend.
//
// Usage:
//
//	kblint patterns.json
//	kblint -probe Good.java -pattern array-sum patterns.json
//	kbdump | kblint /dev/stdin       # the built-in catalog always lints clean
package main

import (
	"flag"
	"fmt"
	"os"

	"strings"

	"semfeed/internal/java/parser"
	"semfeed/internal/match"
	"semfeed/internal/pattern"
	"semfeed/internal/pdg"
)

func main() {
	var (
		probe       = flag.String("probe", "", "Java file to match the patterns against")
		patternName = flag.String("pattern", "", "restrict the probe to one pattern")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kblint [-probe file.java [-pattern name]] patterns.json")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	patterns, err := pattern.ReadAll(f)
	if err != nil {
		fatal(err)
	}

	warnings := 0
	for _, p := range patterns {
		for _, n := range p.Nodes {
			// Structural anchors (a bare variable or a wildcard condition)
			// intentionally carry no feedback; only substantive crucial
			// templates deserve a correct-feedback line.
			if n.Crucial() && n.Feedback.Correct == "" && substantive(n.Exact) {
				fmt.Printf("warn: %s/%s is a crucial anchor without correct-feedback text\n", p.Name(), n.ID)
				warnings++
			}
		}
		if p.Source.Present == "" || p.Source.Missing == "" {
			fmt.Printf("warn: %s lacks present/missing feedback\n", p.Name())
			warnings++
		}
		if len(p.Edges) == 0 && len(p.Nodes) > 1 {
			fmt.Printf("warn: %s has %d nodes but no edges — every node combination will be tried\n",
				p.Name(), len(p.Nodes))
			warnings++
		}
	}
	fmt.Printf("%d patterns compile cleanly, %d warnings\n", len(patterns), warnings)

	if *probe == "" {
		return
	}
	src, err := os.ReadFile(*probe)
	if err != nil {
		fatal(err)
	}
	unit, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	graphs := pdg.BuildAll(unit)
	for _, p := range patterns {
		if *patternName != "" && p.Name() != *patternName {
			continue
		}
		for method, g := range graphs {
			embs := match.Find(p, g)
			if len(embs) == 0 {
				continue
			}
			fmt.Printf("%s over %s: %d embedding(s)\n", p.Name(), method, len(embs))
			for i := range embs {
				if err := match.Verify(&embs[i], g); err != nil {
					fmt.Printf("  INVALID: %v\n", err)
					continue
				}
				fmt.Printf("  %s\n", embs[i].String())
			}
		}
	}
}

// substantive reports whether any exact alternative is a real expression
// fragment (more than one word and not a bare wildcard regex).
func substantive(alts []string) bool {
	for _, a := range alts {
		if strings.HasPrefix(a, "re:.") {
			continue
		}
		if len(strings.Fields(strings.TrimPrefix(a, "re:"))) > 1 {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kblint: %v\n", err)
	os.Exit(1)
}
