// Command gensubs enumerates or samples the synthetic submission space of a
// built-in assignment (the paper's Section VI-A methodology: error-model
// rules make the space of correct and incorrect submissions explicit).
//
// Usage:
//
//	gensubs -assignment assignment1 -n 3          # print 3 sampled submissions
//	gensubs -assignment assignment1 -k 123456     # print submission #123456
//	gensubs -assignment assignment1 -n 100 -out dir/
//	gensubs -assignment assignment1 -stats        # space size and choices
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"semfeed/internal/assignments"
)

func main() {
	var (
		assignmentID = flag.String("assignment", "", "assignment ID (see feedback -list)")
		n            = flag.Int("n", 1, "number of submissions to sample")
		k            = flag.Int64("k", -1, "render exactly submission #k")
		outDir       = flag.String("out", "", "write one .java file per submission into this directory")
		stats        = flag.Bool("stats", false, "print the space size and choice points")
	)
	flag.Parse()

	a := assignments.Get(*assignmentID)
	if a == nil {
		fmt.Fprintf(os.Stderr, "gensubs: unknown assignment %q\n", *assignmentID)
		os.Exit(2)
	}

	if *stats {
		fmt.Printf("assignment %s: |S| = %d\n", a.ID, a.Synth.Size())
		for _, c := range a.Synth.Choices {
			fmt.Printf("  %-12s %d options (option 0 = reference)\n", c.ID, len(c.Options))
		}
		return
	}

	var ks []int64
	if *k >= 0 {
		ks = []int64{*k}
	} else {
		ks = a.Synth.Sample(*n)
	}
	for _, id := range ks {
		src := a.Synth.Render(id)
		if *outDir != "" {
			name := filepath.Join(*outDir, fmt.Sprintf("%s_%012d.java", a.ID, id))
			if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "gensubs: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("// submission %d of %d\n%s\n", id, a.Synth.Size(), src)
	}
}
