// Command feedback grades a Java submission against one of the twelve
// built-in assignments and prints the personalized feedback report.
//
// Usage:
//
//	feedback -assignment assignment1 submission.java
//	cat submission.java | feedback -assignment esc-LAB-3-P4-V1
//	feedback -list
//	feedback -assignment assignment1 -reference   # grade the reference
//	feedback -assignment assignment1 -functest submission.java
//	feedback -assignment assignment1 -reference -trace -metrics-dump
//	feedback -assignment assignment1 -metrics-addr :9090 submission.java
//	feedback -assignment assignment1 -workers 4 sub1.java sub2.java sub3.java
//	feedback -assignment assignment1 -json submission.java      # machine-readable
//	feedback -assignment assignment1 -analyze=false submission.java
//	feedback -assignment assignment1 -analyzers deadstore,noreturn submission.java
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"semfeed/internal/analysis"
	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/functest"
	"semfeed/internal/obs"
	"semfeed/internal/pdg"
)

func main() {
	var (
		assignmentID  = flag.String("assignment", "", "assignment ID (see -list)")
		list          = flag.Bool("list", false, "list the built-in assignments")
		reference     = flag.Bool("reference", false, "grade the assignment's reference solution")
		funcTests     = flag.Bool("functest", false, "also run the functional-test suite")
		interpEngine  = flag.String("interp-engine", core.EngineCompiled, `functional-test interpreter back end: "compiled" (closure-compiled, cached) or "treewalk" (reference evaluator)`)
		inlineHelpers = flag.Bool("inline", false, "inline simple helper methods before grading (future-work extension)")
		normalizeElse = flag.Bool("normalize-else", false, "normalize else branches into negated conditions (future-work extension)")
		jsonOut       = flag.Bool("json", false, "emit the report as JSON (for LMS integration)")
		analyze       = flag.Bool("analyze", true, "run the static analyzers and include their diagnostics in the report")
		analyzerList  = flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all; implies -analyze)")
		workers       = flag.Int("workers", 0, "batch pool size when grading multiple files (0 = GOMAXPROCS)")
		traceFlag     = flag.Bool("trace", false, "record the grade as a span trace and print the span tree to stderr")
		metricsDump   = flag.Bool("metrics-dump", false, "print the Prometheus metrics exposition to stderr on exit")
		metricsAddr   = flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /trace on this address while running")
		logFormat     = flag.String("log-format", "", `emit structured event logs to stderr: "text" or "json" (empty disables)`)
		version       = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("feedback"))
		return
	}

	if *logFormat != "" {
		obs.SetLogger(obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo))
	}
	if *traceFlag {
		obs.Enable()
		obs.EnableTracing()
	}
	if *metricsDump {
		obs.Enable()
	}
	if *metricsAddr != "" {
		msrv, errc := obs.StartServer(*metricsAddr)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = msrv.Shutdown(ctx)
		}()
		go func() {
			if err := <-errc; err != nil {
				fmt.Fprintf(os.Stderr, "feedback: metrics server: %v\n", err)
			}
		}()
	}
	// Observability dumps go to stderr so stdout stays clean for the report
	// (and its JSON form). Called explicitly on every exit path because
	// os.Exit skips defers — a failed parse is exactly the run where
	// parse_errors_total matters.
	dumpObs := func() {
		if *traceFlag {
			if td := obs.LastTrace(); td != nil {
				fmt.Fprintf(os.Stderr, "--- trace ---\n%s", td.Tree())
			}
		}
		if *metricsDump {
			fmt.Fprintln(os.Stderr, "--- metrics ---")
			_ = obs.WriteProm(os.Stderr)
		}
	}

	if *list {
		for _, a := range assignments.All() {
			fmt.Printf("%-18s %-14s %s\n", a.ID, a.Course, a.Description)
		}
		return
	}
	a := assignments.Get(*assignmentID)
	if a == nil {
		fmt.Fprintf(os.Stderr, "feedback: unknown assignment %q (try -list)\n", *assignmentID)
		os.Exit(2)
	}

	// The analyzers default on: every built-in reference solution grades
	// clean, so diagnostics on a submission are signal, not noise. KB
	// definitions may still narrow or disable them per assignment.
	var driver *analysis.Driver
	switch {
	case *analyzerList != "":
		d, err := analysis.Default().Driver(strings.Split(*analyzerList, ","), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "feedback: -analyzers: %v\n", err)
			os.Exit(2)
		}
		driver = d
	case *analyze:
		driver = analysis.DefaultDriver()
	}

	grader := core.NewGrader(core.Options{
		InlineHelpers: *inlineHelpers,
		BuildOptions:  pdg.BuildOpts{NormalizeElse: *normalizeElse},
		Analyzers:     driver,
	})

	// Several file arguments grade as one batch on the worker pool; the
	// reports print in argument order regardless of completion order.
	if !*reference && flag.NArg() > 1 {
		os.Exit(gradeBatch(grader, a, flag.Args(), *workers, *jsonOut, dumpObs))
	}

	src, err := readSource(*reference, a)
	if err != nil {
		fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
		os.Exit(1)
	}
	report, err := grader.Grade(src, a.Spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
		dumpObs()
		os.Exit(1)
	}
	// Dumps run last so they cover the functional tests too.
	defer dumpObs()
	// One structured event line per grade, same schema as the service (the
	// logger discards unless -log-format installed a sink).
	obs.Logger().Info("grade",
		"assignment", a.ID,
		"matched", report.Matched,
		"score", report.Score,
		"max_score", report.MaxScore,
		"elapsed_ms", float64(report.Elapsed.Microseconds())/1000)

	// Functional testing runs before the report is emitted so its cost lands
	// in report.Stats (functest_ns, interp_compile_ns, cache traffic) on the
	// JSON path too. It is its own attributable phase: a span (when tracing)
	// carrying case/step work counters, and the functest slice of
	// semfeed_phase_ns — the column that dominates BENCH_tableone on
	// interpreter-heavy assignments.
	var verdict *functest.Verdict
	if *funcTests {
		v, err := core.RunFuncTests(a.ID, a.Tests, src, *interpEngine, report.Stats)
		if err != nil {
			fmt.Fprintf(os.Stderr, "functional tests: %v\n", err)
			dumpObs()
			os.Exit(1)
		}
		verdict = &v
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(report)
	fmt.Printf("  (feedback computed in %v)\n", report.Elapsed)

	if verdict != nil {
		if verdict.Pass {
			fmt.Println("Functional tests: PASS")
		} else {
			fmt.Println("Functional tests: FAIL")
			for _, f := range verdict.Failures {
				fmt.Printf("  %s\n", f)
			}
		}
	}
}

// gradeBatch grades every named file through the batch engine and prints the
// reports in argument order. Unreadable or unparseable files fail alone; the
// exit code is 1 if any submission failed.
func gradeBatch(grader *core.Grader, a *assignments.Assignment, paths []string, workers int, jsonOut bool, dumpObs func()) int {
	subs := make([]core.Submission, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
			return 1
		}
		subs[i] = core.Submission{ID: path, Src: string(data)}
	}

	bg := core.NewBatchGrader(grader, core.BatchOptions{Workers: workers})
	results, stats := bg.GradeAll(context.Background(), a.Spec, subs)
	defer dumpObs()

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		type item struct {
			File   string       `json:"file"`
			Error  string       `json:"error,omitempty"`
			Report *core.Report `json:"report,omitempty"`
		}
		items := make([]item, len(results))
		for i, res := range results {
			items[i] = item{File: res.ID, Report: res.Report}
			if res.Err != nil {
				items[i].Error = res.Err.Error()
			}
		}
		if err := enc.Encode(items); err != nil {
			fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
			return 1
		}
	} else {
		for _, res := range results {
			fmt.Printf("=== %s ===\n", res.ID)
			if res.Err != nil {
				fmt.Printf("  error: %v\n", res.Err)
				continue
			}
			fmt.Print(res.Report)
		}
		fmt.Printf("batch: %s\n", stats)
	}
	if stats.Failed > 0 || stats.Cancelled > 0 {
		return 1
	}
	return 0
}

func readSource(useReference bool, a *assignments.Assignment) (string, error) {
	if useReference {
		return a.Reference(), nil
	}
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		return string(data), err
	}
	data, err := io.ReadAll(os.Stdin)
	return string(data), err
}
