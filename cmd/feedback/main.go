// Command feedback grades a Java submission against one of the twelve
// built-in assignments and prints the personalized feedback report.
//
// Usage:
//
//	feedback -assignment assignment1 submission.java
//	cat submission.java | feedback -assignment esc-LAB-3-P4-V1
//	feedback -list
//	feedback -assignment assignment1 -reference   # grade the reference
//	feedback -assignment assignment1 -functest submission.java
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"semfeed/internal/assignments"
	"semfeed/internal/core"
	"semfeed/internal/pdg"
)

func main() {
	var (
		assignmentID  = flag.String("assignment", "", "assignment ID (see -list)")
		list          = flag.Bool("list", false, "list the built-in assignments")
		reference     = flag.Bool("reference", false, "grade the assignment's reference solution")
		functest      = flag.Bool("functest", false, "also run the functional-test suite")
		inlineHelpers = flag.Bool("inline", false, "inline simple helper methods before grading (future-work extension)")
		normalizeElse = flag.Bool("normalize-else", false, "normalize else branches into negated conditions (future-work extension)")
		jsonOut       = flag.Bool("json", false, "emit the report as JSON (for LMS integration)")
	)
	flag.Parse()

	if *list {
		for _, a := range assignments.All() {
			fmt.Printf("%-18s %-14s %s\n", a.ID, a.Course, a.Description)
		}
		return
	}
	a := assignments.Get(*assignmentID)
	if a == nil {
		fmt.Fprintf(os.Stderr, "feedback: unknown assignment %q (try -list)\n", *assignmentID)
		os.Exit(2)
	}

	src, err := readSource(*reference, a)
	if err != nil {
		fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
		os.Exit(1)
	}

	grader := core.NewGrader(core.Options{
		InlineHelpers: *inlineHelpers,
		BuildOptions:  pdg.BuildOpts{NormalizeElse: *normalizeElse},
	})
	report, err := grader.Grade(src, a.Spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(report)
	fmt.Printf("  (feedback computed in %v)\n", report.Elapsed)

	if *functest {
		verdict, err := a.Tests.RunSource(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "functional tests: %v\n", err)
			os.Exit(1)
		}
		if verdict.Pass {
			fmt.Println("Functional tests: PASS")
		} else {
			fmt.Println("Functional tests: FAIL")
			for _, f := range verdict.Failures {
				fmt.Printf("  %s\n", f)
			}
		}
	}
}

func readSource(useReference bool, a *assignments.Assignment) (string, error) {
	if useReference {
		return a.Reference(), nil
	}
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		return string(data), err
	}
	data, err := io.ReadAll(os.Stdin)
	return string(data), err
}
