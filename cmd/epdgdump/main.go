// Command epdgdump parses a Java source file and prints the extended
// program dependence graph of every method, as text or Graphviz DOT.
//
// Usage:
//
//	epdgdump file.java
//	epdgdump -dot file.java | dot -Tpng -o epdg.png
//	epdgdump -transitive-ctrl -conservative-data file.java   # ablations
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"semfeed/internal/java/parser"
	"semfeed/internal/pdg"
)

func main() {
	var (
		dot          = flag.Bool("dot", false, "emit Graphviz DOT instead of text")
		transitive   = flag.Bool("transitive-ctrl", false, "keep transitive control edges (ablation)")
		conservative = flag.Bool("conservative-data", false, "conservative data edges (ablation)")
	)
	flag.Parse()

	src, err := readInput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "epdgdump: %v\n", err)
		os.Exit(1)
	}
	unit, err := parser.Parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "epdgdump: %v\n", err)
		os.Exit(1)
	}
	opts := pdg.BuildOpts{TransitiveCtrl: *transitive, ConservativeData: *conservative}
	graphs := pdg.BuildAllWith(unit, opts)
	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "epdgdump: no methods with bodies found")
		os.Exit(1)
	}
	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := graphs[name]
		if *dot {
			fmt.Print(g.DOT())
		} else {
			fmt.Print(g.String())
		}
	}
}

func readInput() (string, error) {
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		return string(data), err
	}
	data, err := io.ReadAll(os.Stdin)
	return string(data), err
}
