package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const buggyJava = `int pick(int n) {
  int unused = 3;
  unused = 5;
  if (n > 0) {
    return n;
  }
}`

const cleanJava = `int sum(int[] a) {
  int s = 0;
  for (int i = 0; i < a.length; i++) {
    s += a[i];
  }
  return s;
}`

func writeJava(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runLint(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestLintFindings(t *testing.T) {
	path := writeJava(t, "Buggy.java", buggyJava)
	code, out, _ := runLint(path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	// file:line: [analyzer] message, sorted by line.
	want := []string{
		path + ":2: [deadstore]",
		path + ":3: [deadstore]",
		": [noreturn]",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output lacks %q:\n%s", w, out)
		}
	}
}

func TestLintCleanExitsZero(t *testing.T) {
	path := writeJava(t, "Clean.java", cleanJava)
	code, out, errb := runLint(path)
	if code != 0 || out != "" {
		t.Fatalf("exit = %d, stdout %q, stderr %q", code, out, errb)
	}
}

func TestLintJSON(t *testing.T) {
	path := writeJava(t, "Buggy.java", buggyJava)
	code, out, _ := runLint("-json", path)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	var findings []struct {
		File     string `json:"file"`
		Analyzer string `json:"analyzer"`
		Line     int    `json:"line"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(findings) < 3 {
		t.Fatalf("findings = %+v", findings)
	}
	for _, f := range findings {
		if f.File != path || f.Analyzer == "" || f.Line == 0 || f.Severity == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}

	// A clean run emits an empty array, not null.
	clean := writeJava(t, "Clean.java", cleanJava)
	code, out, _ = runLint("-json", clean)
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("clean JSON run: exit %d, output %q", code, out)
	}
}

func TestLintEnableDisable(t *testing.T) {
	path := writeJava(t, "Buggy.java", buggyJava)

	// Only noreturn: dead stores suppressed.
	code, out, _ := runLint("-enable", "noreturn", path)
	if code != 1 || strings.Contains(out, "deadstore") || !strings.Contains(out, "noreturn") {
		t.Errorf("-enable noreturn: exit %d\n%s", code, out)
	}

	// Disable everything that fires here: clean exit.
	code, out, _ = runLint("-disable", "deadstore,noreturn", path)
	if code != 0 || out != "" {
		t.Errorf("-disable: exit %d\n%s", code, out)
	}

	// Unknown analyzer names are usage errors.
	code, _, errb := runLint("-enable", "spellcheck", path)
	if code != 2 || !strings.Contains(errb, "spellcheck") {
		t.Errorf("unknown analyzer: exit %d, stderr %q", code, errb)
	}
}

func TestLintUsageAndErrors(t *testing.T) {
	if code, _, _ := runLint(); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	// Unreadable and unparseable files fail with exit 1 but don't stop the run.
	good := writeJava(t, "Clean.java", cleanJava)
	bad := writeJava(t, "Broken.java", "int f( {")
	code, _, errb := runLint(bad, good)
	if code != 1 || !strings.Contains(errb, "Broken.java") {
		t.Errorf("parse error: exit %d, stderr %q", code, errb)
	}
}

func TestLintList(t *testing.T) {
	code, out, _ := runLint("-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"usebeforedef", "deadstore", "unreachable", "constcond", "loopnoprogress", "noreturn"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list lacks %s:\n%s", name, out)
		}
	}
}
