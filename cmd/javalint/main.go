// Command javalint runs the EPDG static analyzers over standalone .java
// files, outside any assignment context: no knowledge base, no patterns —
// just the pattern-independent dataflow diagnostics (use-before-definition,
// dead stores, unreachable code, constant conditions, non-advancing loops,
// missing returns). It is the fast pre-submission check a student or an
// autograder pipeline can run before the full grade.
//
// Usage:
//
//	javalint Sub.java Other.java
//	javalint -enable deadstore,unreachable Sub.java
//	javalint -disable constcond Sub.java
//	javalint -json Sub.java
//	javalint -list
//
// Findings print one per line as "file:line: [analyzer] message" (or a JSON
// array with -json). The exit status is 1 when any finding or per-file error
// was reported, 2 on usage errors, and 0 on a clean run — so it slots into CI
// the same way go vet does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"semfeed/internal/analysis"
	"semfeed/internal/java/parser"
	"semfeed/internal/obs"
	"semfeed/internal/pdg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fileDiagnostic is the JSON output shape: a diagnostic plus the file it
// came from, since javalint spans multiple files where the grading service
// does not.
type fileDiagnostic struct {
	File string `json:"file"`
	analysis.Diagnostic
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("javalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		enable  = fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzer names to skip")
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		list    = fs.Bool("list", false, "list the available analyzers and exit")
		version = fs.Bool("version", false, "print build version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: javalint [-enable names] [-disable names] [-json] file.java...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *version {
		fmt.Fprintln(stdout, obs.VersionString("javalint"))
		return 0
	}
	if *list {
		for _, name := range analysis.Default().Names() {
			a := analysis.Default().Get(name)
			fmt.Fprintf(stdout, "%-16s %-8s %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	driver, err := buildDriver(*enable, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "javalint: %v\n", err)
		return 2
	}

	var findings []fileDiagnostic
	failed := false
	for _, path := range fs.Args() {
		ds, err := lintFile(driver, path)
		if err != nil {
			fmt.Fprintf(stderr, "javalint: %s: %v\n", path, err)
			failed = true
			continue
		}
		for _, d := range ds {
			findings = append(findings, fileDiagnostic{File: path, Diagnostic: d})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []fileDiagnostic{} // emit [], not null, for a clean run
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "javalint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	if failed || len(findings) > 0 {
		return 1
	}
	return 0
}

// buildDriver resolves the -enable/-disable lists against the registry.
// Unknown names are usage errors: a typo silently linting nothing is worse
// than failing loudly.
func buildDriver(enable, disable string) (*analysis.Driver, error) {
	return analysis.Default().Driver(splitNames(enable), splitNames(disable))
}

func splitNames(csv string) []string {
	if csv == "" {
		return nil
	}
	var names []string
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// lintFile parses one source file, builds the EPDG of every method and runs
// the driver. Diagnostics come back in the driver's deterministic order
// (line, then analyzer, then method).
func lintFile(driver *analysis.Driver, path string) ([]analysis.Diagnostic, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	unit, err := parser.Parse(string(src))
	if err != nil {
		return nil, err
	}
	return driver.Run(pdg.BuildAll(unit)), nil
}
