// Command tableone regenerates Table I of the paper: for every assignment it
// measures the submission-space size S, average lines L, functional-testing
// time T, pattern and constraint counts P and C, matching time M, and the
// discrepancy count D, printing each measured row next to the published one.
//
// Usage:
//
//	tableone              # 200 submissions per assignment (exhaustive when smaller)
//	tableone -n 5000      # larger sample; small spaces become exhaustive
//	tableone -assignment assignment1 -n 640000   # one full row
package main

import (
	"flag"
	"fmt"
	"os"

	"semfeed/internal/assignments"
	"semfeed/internal/bench"
)

func main() {
	var (
		n   = flag.Int("n", 200, "max submissions evaluated per assignment")
		one = flag.String("assignment", "", "measure a single assignment")
	)
	flag.Parse()

	var rows []bench.Row
	if *one != "" {
		a := assignments.Get(*one)
		if a == nil {
			fmt.Fprintf(os.Stderr, "tableone: unknown assignment %q\n", *one)
			os.Exit(2)
		}
		rows = []bench.Row{bench.MeasureRow(a, *n)}
	} else {
		rows = bench.MeasureAll(*n)
	}
	fmt.Print(bench.FormatTable(rows))
	fmt.Println("\nD(eval) counts functional-vs-feedback disagreements among evaluated submissions;")
	fmt.Println("D(scaled) extrapolates to the full space when sampling. Absolute times are not")
	fmt.Println("comparable to the paper's 2006-era hardware; the claims are M in the millisecond")
	fmt.Println("range, T >= M, and D << S.")
}
