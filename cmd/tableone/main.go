// Command tableone regenerates Table I of the paper: for every assignment it
// measures the submission-space size S, average lines L, functional-testing
// time T, pattern and constraint counts P and C, matching time M, and the
// discrepancy count D, printing each measured row next to the published one.
//
// Usage:
//
//	tableone              # 200 submissions per assignment (exhaustive when smaller)
//	tableone -n 5000      # larger sample; small spaces become exhaustive
//	tableone -assignment assignment1 -n 640000   # one full row
//	tableone -json        # also write BENCH_tableone.json (T, M, D plus matcher work counters)
//	tableone -workers 4   # batch-grade each row on a 4-worker pool (also measures speedup vs serial)
//	tableone -seed 42     # reproducible alternate sample of non-exhaustive rows
//	tableone -analysis    # also run the static analyzers; records per-grade overhead (analysis_ns)
//	tableone -metrics-addr :9090   # serve live pipeline metrics during the sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"semfeed/internal/assignments"
	"semfeed/internal/bench"
	"semfeed/internal/obs"
)

func main() {
	var (
		n           = flag.Int("n", 200, "max submissions evaluated per assignment")
		one         = flag.String("assignment", "", "measure a single assignment")
		workers     = flag.Int("workers", 0, "batch grading pool size (0 = GOMAXPROCS)")
		seed        = flag.Int64("seed", 0, "sample seed for non-exhaustive rows (0 = historical walk)")
		analysisOn  = flag.Bool("analysis", false, "run the static analyzers on every submission and record the per-grade overhead")
		jsonOut     = flag.Bool("json", false, "write the sweep (incl. matcher work counters) to -json-out")
		jsonPath    = flag.String("json-out", "BENCH_tableone.json", "output path for -json")
		traceFlag   = flag.Bool("trace", false, "record grade span traces and print the last span tree to stderr")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /trace on this address during the sweep")
	)
	flag.Parse()

	if *traceFlag {
		obs.Enable()
		obs.EnableTracing()
	}
	if *metricsAddr != "" {
		msrv, errc := obs.StartServer(*metricsAddr)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = msrv.Shutdown(ctx)
		}()
		go func() {
			if err := <-errc; err != nil {
				fmt.Fprintf(os.Stderr, "tableone: metrics server: %v\n", err)
			}
		}()
	}

	opts := bench.Options{MaxSubs: *n, Workers: *workers, Seed: *seed, Analysis: *analysisOn}
	var rows []bench.Row
	if *one != "" {
		a := assignments.Get(*one)
		if a == nil {
			fmt.Fprintf(os.Stderr, "tableone: unknown assignment %q\n", *one)
			os.Exit(2)
		}
		rows = []bench.Row{bench.MeasureRowOpts(a, opts)}
	} else {
		rows = bench.MeasureAllOpts(opts)
	}
	fmt.Print(bench.FormatTable(rows))
	fmt.Println("\nD(eval) counts functional-vs-feedback disagreements among evaluated submissions;")
	fmt.Println("D(scaled) extrapolates to the full space when sampling. Absolute times are not")
	fmt.Println("comparable to the paper's 2006-era hardware; the claims are M in the millisecond")
	fmt.Println("range, T >= M, and D << S.")

	if *jsonOut {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tableone: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, rows, time.Now()); err != nil {
			fmt.Fprintf(os.Stderr, "tableone: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tableone: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tableone: wrote %s (%d rows)\n", *jsonPath, len(rows))
	}
	if *traceFlag {
		if td := obs.LastTrace(); td != nil {
			fmt.Fprintf(os.Stderr, "--- last trace ---\n%s", td.Tree())
		}
	}
}
