package semfeed_test

import (
	"fmt"
	"testing"

	"semfeed/internal/assignments"
	"semfeed/internal/baseline/autograder"
	"semfeed/internal/baseline/clara"
	"semfeed/internal/bench"
	"semfeed/internal/core"
	"semfeed/internal/functest"
	"semfeed/internal/interp"
	"semfeed/internal/java/ast"
	"semfeed/internal/java/parser"
	"semfeed/internal/kb"
	"semfeed/internal/match"
	"semfeed/internal/pdg"
)

// ---------------------------------------------------------------------------
// Table I (E1): one matching bench and one functional-testing bench per
// assignment row. The M column of the paper is the per-submission feedback
// time; the T column is the per-submission functional-testing time. Use
// cmd/tableone to print the full table including S, L, P, C and D.

func sampleUnits(b *testing.B, a *assignments.Assignment, n int) []*ast.CompilationUnit {
	b.Helper()
	var units []*ast.CompilationUnit
	for _, k := range a.Synth.Sample(n) {
		unit, err := parser.Parse(a.Synth.Render(k))
		if err != nil {
			b.Fatalf("sample %d does not parse: %v", k, err)
		}
		units = append(units, unit)
	}
	return units
}

// BenchmarkTableI_Matching measures column M: personalized feedback time per
// submission (EPDG construction + pattern matching + constraints).
func BenchmarkTableI_Matching(b *testing.B) {
	for _, a := range assignments.All() {
		a := a
		b.Run(a.ID, func(b *testing.B) {
			units := sampleUnits(b, a, 32)
			g := core.NewGrader(core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := g.GradeUnit(units[i%len(units)], a.Spec)
				if rep == nil {
					b.Fatal("nil report")
				}
			}
		})
	}
}

// BenchmarkTableI_FuncTest measures column T: functional-testing time per
// submission.
func BenchmarkTableI_FuncTest(b *testing.B) {
	for _, a := range assignments.All() {
		a := a
		b.Run(a.ID, func(b *testing.B) {
			units := sampleUnits(b, a, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = a.Tests.Run(units[i%len(units)])
			}
		})
	}
}

// interpHeavy are the Table I rows whose cost is dominated by functional
// testing (loop-bound interpreter work) — the rows the closure-compiled
// engine targets.
var interpHeavy = []string{"esc-LAB-3-P1-V1", "esc-LAB-3-P2-V2", "esc-LAB-3-P3-V1", "esc-LAB-3-P3-V2"}

// BenchmarkInterpCompiled runs each interpreter-heavy suite on a program
// compiled once — the compile-once/execute-many hot path of grading.
func BenchmarkInterpCompiled(b *testing.B) {
	for _, id := range interpHeavy {
		a := assignments.Get(id)
		b.Run(id, func(b *testing.B) {
			unit, err := parser.Parse(a.Reference())
			if err != nil {
				b.Fatal(err)
			}
			prog := interp.Compile(unit)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !a.Tests.RunProgram(prog).Pass {
					b.Fatal("reference failed its own tests")
				}
			}
		})
	}
}

// BenchmarkInterpTreeWalk is the same work on the tree-walking reference
// engine; the ratio against BenchmarkInterpCompiled is the headline speedup.
func BenchmarkInterpTreeWalk(b *testing.B) {
	for _, id := range interpHeavy {
		a := assignments.Get(id)
		b.Run(id, func(b *testing.B) {
			unit, err := parser.Parse(a.Reference())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !a.Tests.RunTreeWalk(unit).Pass {
					b.Fatal("reference failed its own tests")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Section VI-C (E5): matching cost versus input magnitude. Our feedback time
// is independent of the tested input; the CLARA-style baseline's trace
// collection grows linearly with it (the paper's k = 100,000 timeout).

const sumLoopSrc = `void run(int n) {
  int s = 0;
  int i = 1;
  while (i <= n) {
    s += i;
    i++;
  }
  System.out.println(s);
}`

func BenchmarkScalabilityVsClara(b *testing.B) {
	spec := &core.AssignmentSpec{
		Name: "sum-loop",
		Methods: []core.MethodSpec{{
			Name: "run",
			Patterns: []core.PatternUse{
				{Pattern: kb.Pattern("counter-increment"), Count: 1},
				{Pattern: kb.Pattern("cond-accumulate-add"), Count: 1},
				{Pattern: kb.Pattern("assign-print"), Count: 1},
			},
		}},
	}
	// CLARA at k = 1,000,000 exceeds its trace budget (the paper's timeout
	// at k = 100,000); TestComparisonScalabilityVsClaraTimeout covers that
	// terminal case, the bench measures the growth below it.
	for _, k := range []int64{100, 2_000, 20_000} {
		k := k
		b.Run(fmt.Sprintf("semfeed/k=%d", k), func(b *testing.B) {
			unit, err := parser.Parse(sumLoopSrc)
			if err != nil {
				b.Fatal(err)
			}
			g := core.NewGrader(core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = g.GradeUnit(unit, spec) // static: cost independent of k
			}
		})
		b.Run(fmt.Sprintf("clara/k=%d", k), func(b *testing.B) {
			inputs := []functest.Case{{Name: "k", Args: []interp.Value{int64(k)}}}
			cg := clara.New("run", inputs, clara.Options{MaxSteps: 50_000_000})
			if cg.Train([]string{sumLoopSrc}) != 1 {
				b.Fatal("train failed")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cg.Feedback(sumLoopSrc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Section VI-C (E6): Sketch-style repair search blows up combinatorially
// with the number of injected errors (the paper: degradation past 4 repairs).

func BenchmarkSketchRepairBlowup(b *testing.B) {
	a := assignments.Get("assignment1")
	ag := autograder.New(a.Synth, a.Tests, autograder.Options{ConcatWorkaround: true, MaxRepairs: 6})
	errorSets := []map[string]int{
		{"oddInit": 1},
		{"oddInit": 1, "evenInit": 1},
		{"oddInit": 1, "evenInit": 1, "cmpOp": 1},
		{"oddInit": 1, "evenInit": 1, "cmpOp": 1, "oddOp": 1},
		{"oddInit": 1, "evenInit": 1, "cmpOp": 1, "oddOp": 1, "evenOp": 1},
	}
	for n, overrides := range errorSets {
		overrides := overrides
		b.Run(fmt.Sprintf("errors=%d", n+1), func(b *testing.B) {
			idx := a.Synth.IndexWith(overrides)
			var k int64
			for i, c := range a.Synth.Choices {
				k = k*int64(len(c.Options)) + int64(idx[i])
			}
			candidates := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := ag.RepairIndex(k)
				if err != nil {
					b.Fatal(err)
				}
				candidates = stats.Candidates
			}
			b.ReportMetric(float64(candidates), "candidates")
		})
	}
}

// Ours, on the same five-error submission, for contrast with the blowup.
func BenchmarkSemfeedFiveErrors(b *testing.B) {
	a := assignments.Get("assignment1")
	src := a.Synth.RenderWith(map[string]int{
		"oddInit": 1, "evenInit": 1, "cmpOp": 1, "oddOp": 1, "evenOp": 1,
	})
	unit, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	g := core.NewGrader(core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.GradeUnit(unit, a.Spec)
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5): the EPDG and matcher construction choices the
// paper calls out.

func ablationUnits(b *testing.B) []*ast.CompilationUnit {
	b.Helper()
	var units []*ast.CompilationUnit
	for _, a := range assignments.All() {
		unit, err := parser.Parse(a.Reference())
		if err != nil {
			b.Fatal(err)
		}
		units = append(units, unit)
	}
	return units
}

// BenchmarkAblationCtrlEdges compares matching over reduced (paper) versus
// transitive control edges.
func BenchmarkAblationCtrlEdges(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts pdg.BuildOpts
	}{
		{"reduced", pdg.BuildOpts{}},
		{"transitive", pdg.BuildOpts{TransitiveCtrl: true}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			units := ablationUnits(b)
			edges := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := assignments.All()[i%len(units)]
				g := core.NewGrader(core.Options{BuildOptions: variant.opts})
				rep := g.GradeUnit(units[i%len(units)], a.Spec)
				_ = rep
			}
			b.StopTimer()
			for _, u := range units {
				for _, gph := range pdg.BuildAllWith(u, variant.opts) {
					edges += len(gph.Edges)
				}
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkAblationDataEdges compares the paper's one-iteration
// linearization against the conservative (conditions-may-fail) convention.
func BenchmarkAblationDataEdges(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts pdg.BuildOpts
	}{
		{"linearized", pdg.BuildOpts{}},
		{"conservative", pdg.BuildOpts{ConservativeData: true}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			units := ablationUnits(b)
			edges := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := assignments.All()[i%len(units)]
				g := core.NewGrader(core.Options{BuildOptions: variant.opts})
				_ = g.GradeUnit(units[i%len(units)], a.Spec)
			}
			b.StopTimer()
			for _, u := range units {
				for _, gph := range pdg.BuildAllWith(u, variant.opts) {
					edges += len(gph.Edges)
				}
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkAblationNodeOrdering compares candidate-count-driven pattern-node
// ordering (ours) against Algorithm 1's declaration order.
func BenchmarkAblationNodeOrdering(b *testing.B) {
	a := assignments.Get("rit-medals-by-ath") // largest patterns and graphs
	unit, err := parser.Parse(a.Reference())
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		opts match.Options
	}{
		{"ordered", match.Options{}},
		{"paper-order", match.Options{PaperOrder: true}},
		{"no-prefilter", match.Options{NoPrefilter: true}},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			g := core.NewGrader(core.Options{MatchOptions: variant.opts})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = g.GradeUnit(unit, a.Spec)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Component micro-benches.

func BenchmarkEPDGBuild(b *testing.B) {
	a := assignments.Get("rit-all-g-medals")
	m, err := parser.ParseMethod(a.Reference())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pdg.Build(m)
	}
}

func BenchmarkParse(b *testing.B) {
	a := assignments.Get("rit-all-g-medals")
	src := a.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatternMatchingSingle(b *testing.B) {
	a := assignments.Get("assignment1")
	m, err := parser.ParseMethod(a.Reference())
	if err != nil {
		b.Fatal(err)
	}
	g := pdg.Build(m)
	p := kb.Pattern("seq-odd-access")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if embs := match.Find(p, g); len(embs) == 0 {
			b.Fatal("no embeddings")
		}
	}
}

// ---------------------------------------------------------------------------
// TestTableIShape is the checked-in smoke version of cmd/tableone: it
// regenerates a small-sample Table I and asserts the headline claims — the
// matching time M stays in the low-millisecond range and the discrepancy
// rate stays far below the space size.
func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table regeneration")
	}
	rows := bench.MeasureAll(60)
	t.Logf("\n%s", bench.FormatTable(rows))
	for _, r := range rows {
		if r.M.Milliseconds() > 50 {
			t.Errorf("%s: matching time %v is not 'milliseconds on average'", r.Assignment, r.M)
		}
		if r.Evaluated > 0 && r.D > r.Evaluated/3 {
			t.Errorf("%s: %d/%d discrepancies — far above the paper's rate", r.Assignment, r.D, r.Evaluated)
		}
	}
}
